//! N-user × M-OS core topologies: the OS-core pool and its dispatch
//! policies.
//!
//! The paper's §V-C study stops at 4 user cores sharing *one* OS core,
//! where queueing delay explodes past 25,000 cycles. This module
//! generalises the off-load back-end so the campaign can keep going: a
//! [`Topology`] names the core-count geometry, an [`OsCorePool`] serves
//! off-loaded invocations from `M` OS cores × `k` SMT contexts each, and
//! a [`DispatchPolicy`] decides which OS core a request lands on.
//!
//! The pool fixes the single-in-flight assumption of the original
//! [`OsCoreQueue`](crate::migration::OsCoreQueue): every dispatch hands
//! back a per-context reservation token ([`OsToken`]), so any number of
//! requests can be in flight concurrently and released in any order.
//!
//! ## Warmth model
//!
//! Each OS core remembers the most recent [`WARM_CAP`] AStates it
//! served (an MRU list standing in for its private L1/L2 contents).
//! When `os_cold_penalty` is non-zero, a dispatch whose AState is *not*
//! in the chosen core's warm set pays that many extra service cycles —
//! under **every** policy, which is what makes
//! [`AStateAffinity`](DispatchPolicy::AStateAffinity) a real contender:
//! routing a syscall back to the core that served its AState before
//! skips the penalty, at the cost of sometimes queueing behind it.

use core::fmt;
use osoffload_sim::{Counter, Cycle, Histogram, RunningStats};

/// AStates each OS core keeps warm (the MRU capacity of its modelled
/// cache footprint).
const WARM_CAP: usize = 32;

/// Core-count geometry of one off-loading run.
///
/// # Examples
///
/// ```
/// use osoffload_system::Topology;
///
/// let t = Topology {
///     user_cores: 16,
///     os_cores: 4,
///     contexts_per_core: 1,
/// };
/// assert_eq!(t.total_cores(), 20);
/// assert_eq!(t.os_contexts(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Cores running application threads.
    pub user_cores: usize,
    /// Cores dedicated to off-loaded OS work.
    pub os_cores: usize,
    /// SMT hardware contexts per OS core (1 = the paper's non-SMT core).
    pub contexts_per_core: usize,
}

impl Topology {
    /// Total physical cores the topology provisions.
    pub fn total_cores(&self) -> usize {
        self.user_cores + self.os_cores
    }

    /// Total OS-side hardware contexts (cores × contexts).
    pub fn os_contexts(&self) -> usize {
        self.os_cores * self.contexts_per_core
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} ({} ctx/core)",
            self.user_cores, self.os_cores, self.contexts_per_core
        )
    }
}

/// How the pool picks an OS core for an off-loaded invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// `user_core mod os_cores`: each user core is pinned to one OS
    /// core. No global state, perfectly predictable, but hot user cores
    /// cannot spill onto idle OS cores.
    StaticPartition,
    /// Earliest-free context anywhere in the pool. With one OS core and
    /// one context this *is* the original single-server queue, which is
    /// why it is the default.
    #[default]
    LeastLoaded,
    /// Strict rotation over the OS cores, ignoring load.
    RoundRobin,
    /// Prefer an OS core whose warm set already holds the request's
    /// AState (earliest-free among the warm candidates); fall back to
    /// least-loaded when no core is warm.
    AStateAffinity,
}

impl DispatchPolicy {
    /// Every policy, in canonical sweep order.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::StaticPartition,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::AStateAffinity,
    ];

    /// Stable CLI / archive label.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::StaticPartition => "static-partition",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::AStateAffinity => "astate-affinity",
        }
    }

    /// Parses a [`label`](Self::label).
    pub fn parse(s: &str) -> Option<DispatchPolicy> {
        DispatchPolicy::ALL.into_iter().find(|p| p.label() == s)
    }
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Reservation token for one in-flight dispatch: names the exact
/// hardware context serving the request, and must be handed back via
/// [`OsCorePool::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsToken {
    core: usize,
    ctx: usize,
}

impl OsToken {
    /// Pool-relative index of the OS core serving the request.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Hardware context on that core.
    pub fn ctx(&self) -> usize {
        self.ctx
    }
}

/// Outcome of one [`OsCorePool::dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsDispatch {
    /// Reservation to hand back when service completes.
    pub token: OsToken,
    /// Pool-relative index of the chosen OS core.
    pub core: usize,
    /// Cycle at which service starts (arrival plus any queueing delay).
    pub start: Cycle,
    /// Extra service cycles charged because the chosen core was cold for
    /// this AState ([`Cycle::ZERO`] when the pool's cold penalty is 0 or
    /// the core was warm).
    pub warm_up: Cycle,
}

/// Per-core state inside the pool.
#[derive(Debug, Clone)]
struct OsCoreState {
    /// Next-free time of each hardware context.
    contexts: Vec<Cycle>,
    /// Contexts handed out by an unreleased dispatch.
    reserved: Vec<bool>,
    /// Accumulated service time on this core.
    busy: Cycle,
    /// MRU list of recently served AStates (capacity [`WARM_CAP`]).
    warm: Vec<u64>,
}

/// The multi-core service pool in front of the OS cores.
///
/// Replaces the single-server [`OsCoreQueue`](crate::OsCoreQueue):
/// requests carry per-context reservation tokens, so overlapping
/// dispatches are correct by construction and releases may arrive in
/// any order. With one core, one context, the default
/// [`LeastLoaded`](DispatchPolicy::LeastLoaded) policy and a zero cold
/// penalty, the pool is cycle-for-cycle identical to the old queue.
///
/// # Examples
///
/// ```
/// use osoffload_system::{DispatchPolicy, OsCorePool};
/// use osoffload_sim::Cycle;
///
/// let mut pool = OsCorePool::new(2, 1, DispatchPolicy::RoundRobin, 0);
/// let a = pool.dispatch(Cycle::new(100), 0, 7);
/// let b = pool.dispatch(Cycle::new(100), 0, 7);
/// // Two cores: concurrent requests land on different cores and both
/// // start immediately.
/// assert_ne!(a.core, b.core);
/// assert_eq!(a.start, Cycle::new(100));
/// assert_eq!(b.start, Cycle::new(100));
/// pool.release(b.token, Cycle::new(900));
/// pool.release(a.token, Cycle::new(1_200)); // out-of-order is fine
/// ```
#[derive(Debug, Clone)]
pub struct OsCorePool {
    cores: Vec<OsCoreState>,
    contexts_per_core: usize,
    policy: DispatchPolicy,
    cold_penalty: u64,
    rr_next: usize,
    requests: Counter,
    stalled: Counter,
    queue_delay: RunningStats,
    queue_delay_hist: Histogram,
}

impl OsCorePool {
    /// Creates an idle pool of `os_cores` cores × `contexts_per_core`
    /// SMT contexts, dispatching under `policy` with the given cold
    /// penalty (cycles added to service when the chosen core has not
    /// seen the request's AState recently; 0 disables the warmth model
    /// for every policy except
    /// [`AStateAffinity`](DispatchPolicy::AStateAffinity), which still
    /// tracks warmth to route).
    ///
    /// # Panics
    ///
    /// Panics if `os_cores` or `contexts_per_core` is zero.
    pub fn new(
        os_cores: usize,
        contexts_per_core: usize,
        policy: DispatchPolicy,
        cold_penalty: u64,
    ) -> Self {
        assert!(os_cores > 0, "OsCorePool: need at least one OS core");
        assert!(
            contexts_per_core > 0,
            "OsCorePool: need at least one context"
        );
        OsCorePool {
            cores: (0..os_cores)
                .map(|_| OsCoreState {
                    contexts: vec![Cycle::ZERO; contexts_per_core],
                    reserved: vec![false; contexts_per_core],
                    busy: Cycle::ZERO,
                    warm: Vec::with_capacity(WARM_CAP),
                })
                .collect(),
            contexts_per_core,
            policy,
            cold_penalty,
            rr_next: 0,
            requests: Counter::new(),
            stalled: Counter::new(),
            queue_delay: RunningStats::new(),
            queue_delay_hist: Histogram::new(),
        }
    }

    /// Creates a pool sized by a [`Topology`].
    pub fn from_topology(topo: Topology, policy: DispatchPolicy, cold_penalty: u64) -> Self {
        Self::new(topo.os_cores, topo.contexts_per_core, policy, cold_penalty)
    }

    /// Number of OS cores.
    pub fn os_cores(&self) -> usize {
        self.cores.len()
    }

    /// SMT contexts per OS core.
    pub fn contexts_per_core(&self) -> usize {
        self.contexts_per_core
    }

    /// The dispatch policy in force.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Admits a request arriving at `arrival` from `user_core` with the
    /// given AState tag; returns the reservation, chosen core, service
    /// start cycle and any cold-start service surcharge.
    ///
    /// Queueing delay (`start - arrival`) excludes the warm-up
    /// surcharge: the former is time spent *waiting* for a context, the
    /// latter is extra *service* time.
    ///
    /// # Panics
    ///
    /// Panics if every context on the policy-chosen core is reserved
    /// (the caller holds more in-flight reservations than the core has
    /// contexts).
    pub fn dispatch(&mut self, arrival: Cycle, user_core: usize, astate: u64) -> OsDispatch {
        self.requests.incr();
        let core = match self.policy {
            DispatchPolicy::StaticPartition => user_core % self.cores.len(),
            DispatchPolicy::LeastLoaded => self.least_loaded_core(),
            DispatchPolicy::RoundRobin => {
                let c = self.rr_next % self.cores.len();
                self.rr_next = self.rr_next.wrapping_add(1);
                c
            }
            DispatchPolicy::AStateAffinity => self.affinity_core(astate),
        };
        let (ctx, free_at) = self.earliest_free(core);
        let start = arrival.max(free_at);
        let delay = start - arrival;
        if delay > Cycle::ZERO {
            self.stalled.incr();
        }
        self.queue_delay.record(delay.as_f64());
        self.queue_delay_hist.record(delay.as_u64());
        let warm_up = self.touch_warmth(core, astate);
        self.cores[core].reserved[ctx] = true;
        OsDispatch {
            token: OsToken { core, ctx },
            core,
            start,
            warm_up,
        }
    }

    /// Globally earliest-free unreserved context's core; ties break to
    /// the lowest `(core, context)` pair, matching the original queue's
    /// first-minimal `min_by_key`.
    fn least_loaded_core(&self) -> usize {
        let mut best: Option<(Cycle, usize)> = None;
        for (c, core) in self.cores.iter().enumerate() {
            for (x, &free) in core.contexts.iter().enumerate() {
                if core.reserved[x] {
                    continue;
                }
                if best.is_none_or(|(b, _)| free < b) {
                    best = Some((free, c));
                }
            }
        }
        best.expect("OsCorePool: no free context on any OS core").1
    }

    /// Earliest-free context among cores warm for `astate`; falls back
    /// to least-loaded when nothing is warm.
    fn affinity_core(&self, astate: u64) -> usize {
        let mut best: Option<(Cycle, usize)> = None;
        for (c, core) in self.cores.iter().enumerate() {
            if !core.warm.contains(&astate) {
                continue;
            }
            for (x, &free) in core.contexts.iter().enumerate() {
                if core.reserved[x] {
                    continue;
                }
                if best.is_none_or(|(b, _)| free < b) {
                    best = Some((free, c));
                }
            }
        }
        match best {
            Some((_, c)) => c,
            None => self.least_loaded_core(),
        }
    }

    /// Earliest-free unreserved context on `core` (first-minimal
    /// tie-break, identical to the original queue's selection).
    fn earliest_free(&self, core: usize) -> (usize, Cycle) {
        let c = &self.cores[core];
        c.contexts
            .iter()
            .enumerate()
            .filter(|&(x, _)| !c.reserved[x])
            .min_by_key(|&(_, &t)| t)
            .map(|(x, &t)| (x, t))
            .unwrap_or_else(|| panic!("OsCorePool: no free context on OS core {core}"))
    }

    /// Updates `core`'s MRU warm set with `astate` and returns the
    /// cold-start surcharge. The whole model is skipped (zero cost, no
    /// state) when it cannot matter: penalty 0 and a policy that does
    /// not route on warmth.
    fn touch_warmth(&mut self, core: usize, astate: u64) -> Cycle {
        if self.cold_penalty == 0 && self.policy != DispatchPolicy::AStateAffinity {
            return Cycle::ZERO;
        }
        let warm = &mut self.cores[core].warm;
        let pos = warm.iter().position(|&a| a == astate);
        let was_warm = pos.is_some();
        match pos {
            Some(0) => {}
            Some(p) => {
                warm.remove(p);
                warm.insert(0, astate);
            }
            None => {
                if warm.len() == WARM_CAP {
                    warm.pop();
                }
                warm.insert(0, astate);
            }
        }
        if was_warm {
            Cycle::ZERO
        } else {
            Cycle::new(self.cold_penalty)
        }
    }

    /// Frees the context named by `token` at `end` (the service
    /// completion time). Releases may arrive in any order.
    ///
    /// # Panics
    ///
    /// Panics if the token's context is not currently reserved.
    pub fn release(&mut self, token: OsToken, end: Cycle) {
        let core = &mut self.cores[token.core];
        assert!(
            core.reserved[token.ctx],
            "OsCorePool: release without dispatch"
        );
        core.reserved[token.ctx] = false;
        core.contexts[token.ctx] = end;
    }

    /// Adds `cycles` of service to OS core `core`'s busy account.
    pub fn add_busy(&mut self, core: usize, cycles: Cycle) {
        self.cores[core].busy += cycles;
    }

    /// Busy time accumulated by OS core `core`.
    pub fn core_busy(&self, core: usize) -> Cycle {
        self.cores[core].busy
    }

    /// Total busy time across every OS core.
    pub fn busy(&self) -> Cycle {
        self.cores
            .iter()
            .map(|c| c.busy)
            .fold(Cycle::ZERO, |a, b| a + b)
    }

    /// Number of dispatches currently awaiting release.
    pub fn in_flight(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.reserved.iter().filter(|&&r| r).count())
            .sum()
    }

    /// Total requests admitted.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Requests that had to wait for a context.
    pub fn stalled(&self) -> u64 {
        self.stalled.get()
    }

    /// Queue-delay statistics (cycles).
    pub fn queue_delay(&self) -> &RunningStats {
        &self.queue_delay
    }

    /// Queue-delay distribution.
    pub fn queue_delay_hist(&self) -> &Histogram {
        &self.queue_delay_hist
    }

    /// Clears statistics (after warm-up) without touching queue state:
    /// context next-free times, reservations, warm sets and the
    /// round-robin cursor all survive, exactly like caches do.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.busy = Cycle::ZERO;
        }
        self.requests.take();
        self.stalled.take();
        self.queue_delay = RunningStats::new();
        self.queue_delay_hist = Histogram::new();
    }
}

impl fmt::Display for OsCorePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores × {} ctx [{}]: {} requests ({} stalled), mean queue delay {:.0} cyc",
            self.cores.len(),
            self.contexts_per_core,
            self.policy,
            self.requests.get(),
            self.stalled.get(),
            self.queue_delay.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::OsCoreQueue;
    use osoffload_sim::Rng64;

    #[test]
    fn topology_geometry() {
        let t = Topology {
            user_cores: 8,
            os_cores: 2,
            contexts_per_core: 2,
        };
        assert_eq!(t.total_cores(), 10);
        assert_eq!(t.os_contexts(), 4);
        assert!(t.to_string().contains("8:2"));
    }

    #[test]
    fn dispatch_policy_labels_round_trip() {
        for p in DispatchPolicy::ALL {
            assert_eq!(DispatchPolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(DispatchPolicy::parse("nope"), None);
        assert_eq!(DispatchPolicy::default(), DispatchPolicy::LeastLoaded);
    }

    /// Satellite regression, old half: the original queue cannot hold
    /// two requests in flight even when it has two SMT contexts — the
    /// second `acquire` trips the single-in-flight assertion instead of
    /// using the idle context.
    #[test]
    #[should_panic(expected = "acquire while in flight")]
    fn old_queue_rejects_overlapping_acquires() {
        let mut q = OsCoreQueue::with_contexts(2);
        let s1 = q.acquire(Cycle::new(100));
        assert_eq!(s1, Cycle::new(100));
        // Second request arrives while the first is still being served.
        let _ = q.acquire(Cycle::new(150));
    }

    /// Satellite regression, new half: the pool interleaves the same two
    /// requests correctly — distinct context reservations, immediate
    /// starts, out-of-order release, and busy accounting that sums both
    /// services.
    #[test]
    fn pool_interleaves_overlapping_requests() {
        let mut pool = OsCorePool::new(1, 2, DispatchPolicy::LeastLoaded, 0);
        let a = pool.dispatch(Cycle::new(100), 0, 1);
        let b = pool.dispatch(Cycle::new(150), 0, 2);
        assert_eq!(a.start, Cycle::new(100));
        assert_eq!(b.start, Cycle::new(150), "second context serves b at once");
        assert_ne!(a.token.ctx(), b.token.ctx());
        assert_eq!(pool.in_flight(), 2);
        // Release out of order: b finishes before a.
        pool.release(b.token, Cycle::new(400));
        pool.add_busy(b.core, Cycle::new(250));
        pool.release(a.token, Cycle::new(1_100));
        pool.add_busy(a.core, Cycle::new(1_000));
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.busy(), Cycle::new(1_250));
        // A third request with both contexts free again queues behind
        // the *earlier* completion.
        let c = pool.dispatch(Cycle::new(200), 0, 3);
        assert_eq!(c.start, Cycle::new(400));
        assert_eq!(pool.stalled(), 1);
        assert_eq!(pool.requests(), 3);
    }

    #[test]
    #[should_panic(expected = "release without dispatch")]
    fn double_release_panics() {
        let mut pool = OsCorePool::new(1, 1, DispatchPolicy::LeastLoaded, 0);
        let d = pool.dispatch(Cycle::new(1), 0, 0);
        pool.release(d.token, Cycle::new(5));
        pool.release(d.token, Cycle::new(6));
    }

    #[test]
    #[should_panic(expected = "no free context")]
    fn exhausted_core_panics_instead_of_corrupting() {
        let mut pool = OsCorePool::new(1, 1, DispatchPolicy::LeastLoaded, 0);
        let _ = pool.dispatch(Cycle::new(1), 0, 0);
        let _ = pool.dispatch(Cycle::new(2), 0, 0);
    }

    /// Equivalence where the old model was correct: a strictly
    /// sequential dispatch/release history produces the same start
    /// times and statistics as the single-server queue.
    #[test]
    fn single_core_pool_matches_old_queue_sequentially() {
        let mut q = OsCoreQueue::new();
        let mut pool = OsCorePool::new(1, 1, DispatchPolicy::LeastLoaded, 0);
        let mut rng = Rng64::seed_from(9);
        let mut t = 0u64;
        for _ in 0..200 {
            t += rng.next_u64() % 2_000;
            let arrival = Cycle::new(t);
            let service = 1 + rng.next_u64() % 3_000;
            let qs = q.acquire(arrival);
            let d = pool.dispatch(arrival, 0, rng.next_u64() % 8);
            assert_eq!(d.start, qs);
            assert_eq!(d.warm_up, Cycle::ZERO);
            let end = qs + Cycle::new(service);
            q.release(end);
            q.add_busy(Cycle::new(service));
            pool.release(d.token, end);
            pool.add_busy(d.core, Cycle::new(service));
        }
        assert_eq!(pool.requests(), q.requests());
        assert_eq!(pool.stalled(), q.stalled());
        assert_eq!(pool.busy(), q.busy());
        assert_eq!(pool.queue_delay().mean(), q.queue_delay().mean());
        assert_eq!(
            pool.queue_delay_hist().quantile(99.0),
            q.queue_delay_hist().quantile(99.0)
        );
    }

    #[test]
    fn static_partition_pins_user_cores() {
        let mut pool = OsCorePool::new(2, 4, DispatchPolicy::StaticPartition, 0);
        for user in 0..8 {
            let d = pool.dispatch(Cycle::new(user as u64), user, 0);
            assert_eq!(d.core, user % 2);
        }
    }

    #[test]
    fn round_robin_cycles_over_cores() {
        let mut pool = OsCorePool::new(3, 4, DispatchPolicy::RoundRobin, 0);
        let cores: Vec<usize> = (0..6)
            .map(|i| pool.dispatch(Cycle::new(i), 0, 0).core)
            .collect();
        assert_eq!(cores, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_spills_to_the_idle_core() {
        let mut pool = OsCorePool::new(2, 1, DispatchPolicy::LeastLoaded, 0);
        let a = pool.dispatch(Cycle::new(100), 0, 0);
        assert_eq!(a.core, 0);
        // Core 0 busy: the concurrent request runs on core 1 at once.
        let b = pool.dispatch(Cycle::new(120), 0, 0);
        assert_eq!(b.core, 1);
        assert_eq!(b.start, Cycle::new(120));
        assert_eq!(pool.stalled(), 0);
    }

    #[test]
    fn affinity_routes_warm_astates_and_skips_their_penalty() {
        let mut pool = OsCorePool::new(2, 1, DispatchPolicy::AStateAffinity, 500);
        // Nothing warm: falls back to least-loaded (core 0), pays cold.
        let a = pool.dispatch(Cycle::new(0), 0, 7);
        assert_eq!(a.core, 0);
        assert_eq!(a.warm_up, Cycle::new(500));
        pool.release(a.token, Cycle::new(100));
        // Same AState again: routed back to the now-warm core 0, free.
        let b = pool.dispatch(Cycle::new(200), 3, 7);
        assert_eq!(b.core, 0);
        assert_eq!(b.warm_up, Cycle::ZERO);
        pool.release(b.token, Cycle::new(300));
        // A different AState is cold everywhere.
        let c = pool.dispatch(Cycle::new(400), 0, 8);
        assert_eq!(c.warm_up, Cycle::new(500));
    }

    #[test]
    fn cold_penalty_is_charged_under_every_policy() {
        for policy in DispatchPolicy::ALL {
            let mut pool = OsCorePool::new(1, 2, policy, 300);
            let a = pool.dispatch(Cycle::new(0), 0, 42);
            assert_eq!(a.warm_up, Cycle::new(300), "{policy}: first touch cold");
            pool.release(a.token, Cycle::new(50));
            let b = pool.dispatch(Cycle::new(100), 0, 42);
            assert_eq!(b.warm_up, Cycle::ZERO, "{policy}: second touch warm");
            pool.release(b.token, Cycle::new(150));
        }
    }

    #[test]
    fn warm_set_is_bounded_lru() {
        let mut pool = OsCorePool::new(1, 1, DispatchPolicy::LeastLoaded, 100);
        // Fill past capacity; the oldest AState must be evicted.
        for a in 0..(WARM_CAP as u64 + 1) {
            let d = pool.dispatch(Cycle::new(a * 10), 0, a);
            assert_eq!(d.warm_up, Cycle::new(100));
            pool.release(d.token, Cycle::new(a * 10 + 1));
        }
        // AState 0 was evicted; the newest survives.
        let old = pool.dispatch(Cycle::new(10_000), 0, 0);
        assert_eq!(old.warm_up, Cycle::new(100), "evicted AState is cold");
        pool.release(old.token, Cycle::new(10_001));
        let newest = pool.dispatch(Cycle::new(10_100), 0, WARM_CAP as u64);
        assert_eq!(newest.warm_up, Cycle::ZERO);
    }

    /// Seventh-invariant property, pool level: under every policy and a
    /// random arrival/service history, dispatch never starts a request
    /// before its arrival, and per-core busy sums to the pool total.
    #[test]
    fn dispatch_never_starts_before_arrival() {
        for policy in DispatchPolicy::ALL {
            // 6 contexts per core: even load-blind policies (static
            // partition, round-robin) cannot over-subscribe a core with
            // 5 requests in flight.
            let mut pool = OsCorePool::new(3, 6, policy, 250);
            let mut rng = Rng64::seed_from(0xD15);
            let mut t = 0u64;
            let mut open: Vec<(OsToken, Cycle)> = Vec::new();
            for i in 0..500 {
                t += rng.next_u64() % 1_500;
                let arrival = Cycle::new(t);
                let d = pool.dispatch(arrival, i % 5, rng.next_u64() % 16);
                assert!(
                    d.start >= arrival,
                    "{policy}: started {:?} before arrival {arrival:?}",
                    d.start
                );
                let end = d.start + d.warm_up + Cycle::new(1 + rng.next_u64() % 2_000);
                pool.add_busy(d.core, end - d.start);
                open.push((d.token, end));
                // Keep up to 5 in flight, draining the oldest first.
                if open.len() > 5 {
                    let (tok, end) = open.remove(0);
                    pool.release(tok, end);
                }
            }
            for (tok, end) in open {
                pool.release(tok, end);
            }
            let per_core: u64 = (0..pool.os_cores())
                .map(|c| pool.core_busy(c).as_u64())
                .sum();
            assert_eq!(per_core, pool.busy().as_u64(), "{policy}: busy sum");
            assert_eq!(pool.requests(), 500);
        }
    }

    #[test]
    fn reset_clears_stats_but_keeps_machine_state() {
        let mut pool = OsCorePool::new(2, 1, DispatchPolicy::RoundRobin, 100);
        let a = pool.dispatch(Cycle::new(0), 0, 1);
        pool.release(a.token, Cycle::new(900));
        pool.add_busy(a.core, Cycle::new(900));
        pool.reset_stats();
        assert_eq!(pool.requests(), 0);
        assert_eq!(pool.busy(), Cycle::ZERO);
        // Machine state survives: the context frees at 900, the RR
        // cursor points at core 1, and AState 1 is still warm.
        let b = pool.dispatch(Cycle::new(100), 0, 2);
        assert_eq!(b.core, 1, "round-robin cursor kept");
        pool.release(b.token, Cycle::new(200));
        let c = pool.dispatch(Cycle::new(100), 0, 1);
        assert_eq!(c.core, 0);
        assert_eq!(c.start, Cycle::new(900), "context next-free time kept");
        assert_eq!(c.warm_up, Cycle::ZERO, "warm set kept");
    }

    #[test]
    fn from_topology_sizes_the_pool() {
        let pool = OsCorePool::from_topology(
            Topology {
                user_cores: 4,
                os_cores: 2,
                contexts_per_core: 3,
            },
            DispatchPolicy::LeastLoaded,
            0,
        );
        assert_eq!(pool.os_cores(), 2);
        assert_eq!(pool.contexts_per_core(), 3);
        assert!(!pool.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "need at least one OS core")]
    fn zero_cores_panics() {
        OsCorePool::new(0, 1, DispatchPolicy::LeastLoaded, 0);
    }
}
