//! Measurement reports produced by a simulation run.
//!
//! Every number the experiment drivers print comes out of a
//! [`SimReport`]; the struct serialises to JSON so results can be
//! archived and diffed across runs.

use core::fmt;

/// Queueing behaviour at the OS core (§V-C).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueueReport {
    /// Off-load requests admitted.
    pub requests: u64,
    /// Requests that found the OS core busy.
    pub stalled: u64,
    /// Mean queueing delay in cycles.
    pub mean_delay: f64,
    /// Exact median queueing delay in cycles (nearest-rank from the
    /// log-scale delay histogram).
    pub p50_delay: u64,
    /// Exact 95th-percentile queueing delay in cycles.
    pub p95_delay: u64,
    /// Exact 99th-percentile queueing delay in cycles.
    pub p99_delay: u64,
}

/// Predictor accuracy, mirroring the paper's §III-A reporting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PredictorReport {
    /// Fraction of invocations predicted exactly.
    pub exact: f64,
    /// Fraction predicted within ±5% (includes exact).
    pub within_5pct: f64,
    /// Fraction of errors that were underestimates.
    pub underestimates: f64,
    /// Fraction of predictions served by a confident local entry.
    pub local_fraction: f64,
}

/// Binary off-load decision accuracy at one threshold (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryPoint {
    /// Threshold `N` in instructions.
    pub threshold: u64,
    /// Fraction of invocations where `(predicted > N) == (actual > N)`.
    pub accuracy: f64,
}

/// Where the cycles of a run went, summed over all cores/threads.
///
/// Components are not disjoint with wall-clock time (threads overlap),
/// but their ratios expose what dominates CPI. Serialised in full by
/// [`SimReport::to_json`] (all components are exact integers) so
/// archives and journal restores round-trip it losslessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// One issue cycle per retired instruction.
    pub base: u64,
    /// Added instruction-fetch (L1I-miss) cycles.
    pub fetch: u64,
    /// Added data-access (L1D-miss, upgrade, remote, DRAM) cycles.
    pub data: u64,
    /// TLB refill cycles.
    pub tlb: u64,
    /// Branch misprediction cycles.
    pub branch: u64,
    /// Thread-migration cycles (2 × one-way × off-loads).
    pub migration: u64,
    /// Cycles spent queued for the OS core.
    pub queue_wait: u64,
    /// Decision/instrumentation overhead cycles.
    pub decision: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub profile: String,
    /// Policy label (baseline / SI / DI / HI / …).
    pub policy: String,
    /// Static threshold at run start, if the policy had one.
    pub threshold: Option<u64>,
    /// Threshold in force at run end (differs when the tuner ran).
    pub final_threshold: Option<u64>,
    /// One-way migration latency in cycles.
    pub migration_one_way: u64,
    /// User cores in the topology.
    pub user_cores: usize,
    /// OS cores in the topology (0 for baseline and resource-adaptation
    /// runs; the paper's topology has 1, the Figure 6 sweep up to 8).
    pub os_cores: usize,
    /// Dispatch-policy label routing off-loads over the OS cores (see
    /// [`DispatchPolicy`](crate::topology::DispatchPolicy)).
    pub dispatch: String,
    /// Software threads simulated.
    pub threads: usize,
    /// Instructions retired in the measured region.
    pub instructions: u64,
    /// Wall-clock cycles of the measured region.
    pub cycles: u64,
    /// Aggregate throughput: instructions per cycle across all threads
    /// (the paper's metric; equals IPC for single-threaded runs, §II).
    pub throughput: f64,
    /// Fraction of retired instructions executed in privileged mode.
    pub os_share: f64,
    /// Privileged invocations that were off-loaded.
    pub offloads: u64,
    /// Privileged invocations that ran locally.
    pub local_invocations: u64,
    /// Total decision/instrumentation overhead charged, in cycles.
    pub decision_overhead_cycles: u64,
    /// Mean L1D hit rate across user cores.
    pub l1d_hit_rate: f64,
    /// Mean L1I hit rate across user cores.
    pub l1i_hit_rate: f64,
    /// Mean branch-prediction accuracy on the user cores (user/OS
    /// aliasing pollutes this at baseline — the Gloy et al. channel the
    /// paper cites in §VI-A; off-loading restores it).
    pub user_branch_accuracy: f64,
    /// Mean L2 hit rate across user cores only.
    pub l2_user_hit_rate: f64,
    /// L2 hit rate of the OS core (0 when no OS core).
    pub l2_os_hit_rate: f64,
    /// Mean L2 hit rate across every core — the tuner's feedback metric.
    pub l2_mean_hit_rate: f64,
    /// Cache-to-cache line transfers in the measured region.
    pub c2c_transfers: u64,
    /// Invalidation rounds in the measured region.
    pub invalidation_rounds: u64,
    /// L1 data-cache lookups (hits + misses) across all cores.
    pub l1d_accesses: u64,
    /// L1 instruction-cache lookups across all cores.
    pub l1i_accesses: u64,
    /// L2 lookups across all cores.
    pub l2_accesses: u64,
    /// DRAM demand accesses in the measured region.
    pub dram_accesses: u64,
    /// Cycles spent executing under the throttled low-power mode (only
    /// non-zero in resource-adaptation topologies, §VI-B).
    pub throttled_cycles: u64,
    /// Fraction of run time the OS cores (summed) were busy (Table III;
    /// saturates at 1.0 when several OS cores are provisioned — see
    /// `os_core_utilisation` for the per-core view).
    pub os_core_busy_frac: f64,
    /// Busy cycles of each OS core, indexed by pool position (empty when
    /// no OS core exists).
    pub os_core_busy_cycles: Vec<u64>,
    /// Per-OS-core utilisation: each core's busy cycles over the run's
    /// wall-clock cycles, clamped to `[0, 1]`.
    pub os_core_utilisation: Vec<f64>,
    /// Mean fraction of run time the user cores spent *executing*
    /// (reservation while a thread is migrated away does not count —
    /// the core can clock-gate, which is Mogul et al.'s energy story).
    pub user_cores_busy_frac: f64,
    /// Queueing behaviour at the OS core.
    pub queue: QueueReport,
    /// Predictor accuracy (policies with a predictor).
    pub predictor: Option<PredictorReport>,
    /// Where the cycles went (archived losslessly; all-integer fields).
    pub cycle_breakdown: CycleBreakdown,
    /// Binary decision accuracy across the Figure 3 threshold grid.
    pub binary_accuracy: Vec<BinaryPoint>,
    /// Number of tuner adjustments logged (0 without the tuner).
    pub tuner_events: usize,
}

/// Minimal JSON string escaping (the report's strings are ASCII
/// identifiers, but stay correct for arbitrary content).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SimReport {
    /// Aggregate throughput (instructions per cycle). Convenience
    /// accessor mirroring the paper's headline metric.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Renders the report as a JSON object (stable key order), for
    /// machine consumption by scripts and notebooks.
    ///
    /// The emitter is hand-rolled: the approved dependency set has no
    /// serialisation framework, and the report is a flat struct.
    ///
    /// # Examples
    ///
    /// ```
    /// # use osoffload_system::{PolicyKind, Simulation, SystemConfig};
    /// # use osoffload_workload::Profile;
    /// let report = Simulation::new(
    ///     SystemConfig::builder()
    ///         .profile(Profile::blackscholes())
    ///         .instructions(20_000)
    ///         .seed(1)
    ///         .build(),
    /// )
    /// .run();
    /// let json = report.to_json();
    /// assert!(json.starts_with('{') && json.ends_with('}'));
    /// assert!(json.contains("\"profile\":\"blackscholes\""));
    /// ```
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push('{');
        let field = |o: &mut String, key: &str, value: String| {
            if o.len() > 1 {
                o.push(',');
            }
            o.push('"');
            o.push_str(key);
            o.push_str("\":");
            o.push_str(&value);
        };
        let s = |v: &str| format!("\"{}\"", json_escape(v));
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
        field(&mut o, "profile", s(&self.profile));
        field(&mut o, "policy", s(&self.policy));
        field(&mut o, "threshold", opt(self.threshold));
        field(&mut o, "final_threshold", opt(self.final_threshold));
        field(
            &mut o,
            "migration_one_way",
            self.migration_one_way.to_string(),
        );
        field(&mut o, "user_cores", self.user_cores.to_string());
        field(&mut o, "os_cores", self.os_cores.to_string());
        field(&mut o, "dispatch", s(&self.dispatch));
        field(&mut o, "threads", self.threads.to_string());
        field(&mut o, "instructions", self.instructions.to_string());
        field(&mut o, "cycles", self.cycles.to_string());
        field(&mut o, "throughput", format!("{:.6}", self.throughput));
        field(&mut o, "os_share", format!("{:.6}", self.os_share));
        field(&mut o, "offloads", self.offloads.to_string());
        field(
            &mut o,
            "local_invocations",
            self.local_invocations.to_string(),
        );
        field(
            &mut o,
            "decision_overhead_cycles",
            self.decision_overhead_cycles.to_string(),
        );
        field(&mut o, "l1d_hit_rate", format!("{:.6}", self.l1d_hit_rate));
        field(&mut o, "l1i_hit_rate", format!("{:.6}", self.l1i_hit_rate));
        field(
            &mut o,
            "user_branch_accuracy",
            format!("{:.6}", self.user_branch_accuracy),
        );
        field(
            &mut o,
            "l2_user_hit_rate",
            format!("{:.6}", self.l2_user_hit_rate),
        );
        field(
            &mut o,
            "l2_os_hit_rate",
            format!("{:.6}", self.l2_os_hit_rate),
        );
        field(
            &mut o,
            "l2_mean_hit_rate",
            format!("{:.6}", self.l2_mean_hit_rate),
        );
        field(&mut o, "c2c_transfers", self.c2c_transfers.to_string());
        field(
            &mut o,
            "invalidation_rounds",
            self.invalidation_rounds.to_string(),
        );
        field(&mut o, "l1d_accesses", self.l1d_accesses.to_string());
        field(&mut o, "l1i_accesses", self.l1i_accesses.to_string());
        field(&mut o, "l2_accesses", self.l2_accesses.to_string());
        field(&mut o, "dram_accesses", self.dram_accesses.to_string());
        field(
            &mut o,
            "throttled_cycles",
            self.throttled_cycles.to_string(),
        );
        field(
            &mut o,
            "os_core_busy_frac",
            format!("{:.6}", self.os_core_busy_frac),
        );
        field(
            &mut o,
            "os_core_busy_cycles",
            format!(
                "[{}]",
                self.os_core_busy_cycles
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        field(
            &mut o,
            "os_core_utilisation",
            format!(
                "[{}]",
                self.os_core_utilisation
                    .iter()
                    .map(|u| format!("{u:.6}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        field(
            &mut o,
            "user_cores_busy_frac",
            format!("{:.6}", self.user_cores_busy_frac),
        );
        field(
            &mut o,
            "queue",
            format!(
                "{{\"requests\":{},\"stalled\":{},\"mean_delay\":{:.3},\
                 \"p50_delay\":{},\"p95_delay\":{},\"p99_delay\":{}}}",
                self.queue.requests,
                self.queue.stalled,
                self.queue.mean_delay,
                self.queue.p50_delay,
                self.queue.p95_delay,
                self.queue.p99_delay
            ),
        );
        field(
            &mut o,
            "predictor",
            match &self.predictor {
                None => "null".to_string(),
                Some(p) => format!(
                    "{{\"exact\":{:.6},\"within_5pct\":{:.6},\"underestimates\":{:.6},\"local_fraction\":{:.6}}}",
                    p.exact, p.within_5pct, p.underestimates, p.local_fraction
                ),
            },
        );
        field(
            &mut o,
            "cycle_breakdown",
            format!(
                "{{\"base\":{},\"fetch\":{},\"data\":{},\"tlb\":{},\"branch\":{},\
                 \"migration\":{},\"queue_wait\":{},\"decision\":{}}}",
                self.cycle_breakdown.base,
                self.cycle_breakdown.fetch,
                self.cycle_breakdown.data,
                self.cycle_breakdown.tlb,
                self.cycle_breakdown.branch,
                self.cycle_breakdown.migration,
                self.cycle_breakdown.queue_wait,
                self.cycle_breakdown.decision
            ),
        );
        field(
            &mut o,
            "binary_accuracy",
            format!(
                "[{}]",
                self.binary_accuracy
                    .iter()
                    .map(|b| format!(
                        "{{\"threshold\":{},\"accuracy\":{:.6}}}",
                        b.threshold, b.accuracy
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        field(&mut o, "tuner_events", self.tuner_events.to_string());
        o.push('}');
        o
    }

    /// This run's throughput normalised to a baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the baseline throughput is zero.
    pub fn normalized_to(&self, baseline: &SimReport) -> f64 {
        assert!(baseline.throughput > 0.0, "baseline throughput is zero");
        self.throughput / baseline.throughput
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {:.4} insn/cyc ({} insn, {} cyc), OS {:.1}%, offloads {}, OS-core busy {:.1}%",
            self.profile,
            self.policy,
            self.throughput,
            self.instructions,
            self.cycles,
            self.os_share * 100.0,
            self.offloads,
            self.os_core_busy_frac * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(throughput: f64) -> SimReport {
        SimReport {
            profile: "apache".into(),
            policy: "HI".into(),
            threshold: Some(500),
            final_threshold: Some(500),
            migration_one_way: 100,
            user_cores: 1,
            os_cores: 1,
            dispatch: "least-loaded".into(),
            threads: 2,
            instructions: 1_000,
            cycles: 2_000,
            throughput,
            os_share: 0.5,
            offloads: 10,
            local_invocations: 5,
            decision_overhead_cycles: 15,
            l1d_hit_rate: 0.95,
            l1i_hit_rate: 0.99,
            user_branch_accuracy: 0.93,
            l2_user_hit_rate: 0.8,
            l2_os_hit_rate: 0.7,
            l2_mean_hit_rate: 0.75,
            c2c_transfers: 3,
            invalidation_rounds: 2,
            l1d_accesses: 500,
            l1i_accesses: 1_000,
            l2_accesses: 60,
            dram_accesses: 40,
            throttled_cycles: 0,
            os_core_busy_frac: 0.3,
            os_core_busy_cycles: vec![600],
            os_core_utilisation: vec![0.3],
            user_cores_busy_frac: 0.9,
            queue: QueueReport::default(),
            cycle_breakdown: CycleBreakdown::default(),
            predictor: None,
            binary_accuracy: vec![],
            tuner_events: 0,
        }
    }

    #[test]
    fn normalization() {
        let base = report(0.5);
        let better = report(0.6);
        assert!((better.normalized_to(&base) - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline throughput is zero")]
    fn normalizing_to_zero_panics() {
        report(1.0).normalized_to(&report(0.0));
    }

    #[test]
    fn reports_are_cloneable_and_comparable() {
        let r = report(0.7);
        let c = r.clone();
        assert_eq!(r, c);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!report(0.7).to_string().is_empty());
    }

    #[test]
    fn json_has_expected_structure() {
        let mut r = report(0.7);
        r.cycle_breakdown = CycleBreakdown {
            base: 1_000,
            fetch: 20,
            data: 30,
            tlb: 4,
            branch: 5,
            migration: 2_000,
            queue_wait: 70,
            decision: 15,
        };
        r.binary_accuracy = vec![BinaryPoint {
            threshold: 100,
            accuracy: 0.95,
        }];
        r.predictor = Some(PredictorReport {
            exact: 0.7,
            within_5pct: 0.9,
            underestimates: 0.2,
            local_fraction: 0.8,
        });
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"profile\":\"apache\"",
            "\"policy\":\"HI\"",
            "\"threshold\":500",
            "\"throughput\":0.700000",
            "\"dispatch\":\"least-loaded\"",
            "\"os_core_busy_cycles\":[600]",
            "\"os_core_utilisation\":[0.300000]",
            "\"queue\":{",
            "\"p50_delay\":0",
            "\"p95_delay\":0",
            "\"p99_delay\":0",
            "\"predictor\":{\"exact\":0.700000",
            "\"cycle_breakdown\":{\"base\":1000,\"fetch\":20,\"data\":30,\"tlb\":4,\
             \"branch\":5,\"migration\":2000,\"queue_wait\":70,\"decision\":15}",
            "\"binary_accuracy\":[{\"threshold\":100",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Balanced braces/brackets (flat sanity check for hand-rolled JSON).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_null_fields_when_absent() {
        let mut r = report(0.7);
        r.threshold = None;
        r.predictor = None;
        let j = r.to_json();
        assert!(j.contains("\"threshold\":null"));
        assert!(j.contains("\"predictor\":null"));
    }

    #[test]
    fn json_escapes_strings() {
        let mut r = report(0.7);
        r.profile = "we\"ird\\name".to_string();
        let j = r.to_json();
        assert!(j.contains("we\\\"ird\\\\name"), "{j}");
    }
}
