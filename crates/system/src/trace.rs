//! Per-invocation event tracing.
//!
//! When enabled ([`SystemConfig::builder().trace(capacity)`]), the
//! simulator records one [`InvocationRecord`] per privileged invocation —
//! the AState it entered with, the prediction, the decision, where it
//! ran, and what it cost. The trace is the ground truth behind every
//! aggregate the reports show; exporting it as CSV makes off-line
//! analysis (spreadsheets, pandas, gnuplot) trivial.
//!
//! The buffer is a bounded ring: the newest `capacity` records win and
//! the number of evicted records is reported, so tracing never changes a
//! run's memory footprint unpredictably.
//!
//! [`SystemConfig::builder().trace(capacity)`]: crate::config::SystemConfigBuilder::trace

use core::fmt;
use osoffload_obs::{csv, Event, EventKind, Track};
use osoffload_workload::SyscallId;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One privileged invocation, as the simulator executed it.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    /// Software thread that trapped.
    pub thread: usize,
    /// Entry point.
    pub syscall: SyscallId,
    /// AState hash at entry.
    pub astate: u64,
    /// Predicted run length, if the policy made a prediction.
    pub predicted: Option<u64>,
    /// Whether the invocation was off-loaded (or throttled, in
    /// resource-adaptation mode).
    pub offloaded: bool,
    /// Actual run length in instructions.
    pub actual_len: u64,
    /// Thread-local cycle at which the invocation entered.
    pub entry_cycle: u64,
    /// Cycles spent waiting for the OS core (0 when local).
    pub queue_delay: u64,
    /// Cycles from entry to return, including migration and queueing.
    pub total_cycles: u64,
}

impl InvocationRecord {
    /// The CSV header matching [`to_csv_row`](Self::to_csv_row).
    pub const CSV_HEADER: &'static str =
        "thread,syscall,astate,predicted,offloaded,actual_len,entry_cycle,queue_delay,total_cycles";

    /// Renders the record as one CSV row (no trailing newline). String
    /// fields are escaped per RFC 4180, so entry-point names containing
    /// commas or quotes stay one field.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:#x},{},{},{},{},{},{}",
            self.thread,
            csv::field(&self.syscall.to_string()),
            self.astate,
            self.predicted.map_or(String::new(), |p| p.to_string()),
            self.offloaded,
            self.actual_len,
            self.entry_cycle,
            self.queue_delay,
            self.total_cycles
        )
    }

    /// Reconstructs a record from a telemetry [`Event`], when the event
    /// is an invocation span on a thread track with a known trap number.
    pub fn from_event(ev: &Event) -> Option<InvocationRecord> {
        let Track::Thread(thread) = ev.track else {
            return None;
        };
        let EventKind::Invocation {
            trap,
            astate,
            predicted,
            offloaded,
            actual_len,
            queue_delay,
            ..
        } = ev.kind
        else {
            return None;
        };
        Some(InvocationRecord {
            thread,
            syscall: SyscallId::from_trap(trap)?,
            astate,
            predicted,
            offloaded,
            actual_len,
            entry_cycle: ev.ts,
            queue_delay,
            total_cycles: ev.dur,
        })
    }
}

/// Aggregated view of one entry point within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallSummary {
    /// Entry point.
    pub syscall: SyscallId,
    /// Invocations recorded.
    pub count: u64,
    /// How many were off-loaded.
    pub offloaded: u64,
    /// Mean actual run length (instructions).
    pub mean_len: f64,
    /// Mean absolute prediction error (instructions), over predicted
    /// invocations.
    pub mean_abs_error: f64,
    /// Mean end-to-end cycles per invocation.
    pub mean_cycles: f64,
}

/// Bounded ring buffer of invocation records.
///
/// # Examples
///
/// ```
/// use osoffload_system::trace::{InvocationRecord, InvocationTrace};
/// use osoffload_workload::SyscallId;
///
/// let mut trace = InvocationTrace::new(2);
/// for i in 0..3 {
///     trace.record(InvocationRecord {
///         thread: 0,
///         syscall: SyscallId::Read,
///         astate: i,
///         predicted: Some(100),
///         offloaded: false,
///         actual_len: 100,
///         entry_cycle: i * 10,
///         queue_delay: 0,
///         total_cycles: 100,
///     });
/// }
/// assert_eq!(trace.len(), 2);     // ring keeps the newest two
/// assert_eq!(trace.dropped(), 1); // and counts what it evicted
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvocationTrace {
    ring: VecDeque<InvocationRecord>,
    capacity: usize,
    dropped: u64,
}

impl InvocationTrace {
    /// Creates a trace retaining at most `capacity` records (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        InvocationTrace {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Appends a record, evicting the oldest when full.
    pub fn record(&mut self, r: InvocationRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(r);
    }

    /// Records the invocation described by a telemetry event, ignoring
    /// every other event kind — this makes the trace a consumer of the
    /// unified event stream rather than a parallel recording path.
    pub fn consume(&mut self, ev: &Event) {
        if self.capacity == 0 {
            return;
        }
        if let Some(r) = InvocationRecord::from_event(ev) {
            self.record(r);
        }
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &InvocationRecord> {
        self.ring.iter()
    }

    /// Renders the whole trace as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.ring.len() + 1));
        out.push_str(InvocationRecord::CSV_HEADER);
        out.push('\n');
        for r in &self.ring {
            out.push_str(&r.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Per-entry-point aggregation, sorted by invocation count
    /// (descending).
    pub fn summarize(&self) -> Vec<SyscallSummary> {
        #[derive(Default)]
        struct Acc {
            count: u64,
            offloaded: u64,
            len_sum: f64,
            err_sum: f64,
            err_n: u64,
            cyc_sum: f64,
        }
        let mut by_syscall: BTreeMap<SyscallId, Acc> = BTreeMap::new();
        for r in &self.ring {
            let a = by_syscall.entry(r.syscall).or_default();
            a.count += 1;
            a.offloaded += u64::from(r.offloaded);
            a.len_sum += r.actual_len as f64;
            a.cyc_sum += r.total_cycles as f64;
            if let Some(p) = r.predicted {
                a.err_sum += (p as f64 - r.actual_len as f64).abs();
                a.err_n += 1;
            }
        }
        let mut rows: Vec<SyscallSummary> = by_syscall
            .into_iter()
            .map(|(syscall, a)| SyscallSummary {
                syscall,
                count: a.count,
                offloaded: a.offloaded,
                mean_len: a.len_sum / a.count as f64,
                mean_abs_error: if a.err_n == 0 {
                    0.0
                } else {
                    a.err_sum / a.err_n as f64
                },
                mean_cycles: a.cyc_sum / a.count as f64,
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.count));
        rows
    }
}

impl fmt::Display for InvocationTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records retained ({} dropped, capacity {})",
            self.ring.len(),
            self.dropped,
            self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        syscall: SyscallId,
        len: u64,
        predicted: Option<u64>,
        offloaded: bool,
    ) -> InvocationRecord {
        InvocationRecord {
            thread: 0,
            syscall,
            astate: 0xABC,
            predicted,
            offloaded,
            actual_len: len,
            entry_cycle: 1_000,
            queue_delay: 7,
            total_cycles: len * 2,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = InvocationTrace::new(0);
        t.record(rec(SyscallId::Read, 100, None, false));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_newest() {
        let mut t = InvocationTrace::new(3);
        for i in 0..5u64 {
            let mut r = rec(SyscallId::Read, 100 + i, None, false);
            r.astate = i;
            t.record(r);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let astates: Vec<u64> = t.iter().map(|r| r.astate).collect();
        assert_eq!(astates, vec![2, 3, 4]);
    }

    #[test]
    fn csv_round_shape() {
        let mut t = InvocationTrace::new(4);
        t.record(rec(SyscallId::Read, 2_000, Some(1_950), true));
        t.record(rec(SyscallId::GetPid, 130, None, false));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], InvocationRecord::CSV_HEADER);
        assert!(lines[1].contains("read"));
        assert!(lines[1].contains("1950"));
        assert!(lines[2].contains("getpid"));
        // A missing prediction serialises as an empty field.
        assert!(lines[2].contains(",,"));
        // Every row has the same number of commas as the header.
        let commas = |s: &str| s.matches(',').count();
        assert!(lines.iter().all(|l| commas(l) == commas(lines[0])));
    }

    #[test]
    fn summary_aggregates_per_syscall() {
        let mut t = InvocationTrace::new(16);
        t.record(rec(SyscallId::Read, 1_000, Some(900), true));
        t.record(rec(SyscallId::Read, 2_000, Some(2_100), true));
        t.record(rec(SyscallId::GetPid, 130, Some(130), false));
        let rows = t.summarize();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].syscall, SyscallId::Read, "sorted by count");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].offloaded, 2);
        assert!((rows[0].mean_len - 1_500.0).abs() < 1e-9);
        assert!((rows[0].mean_abs_error - 100.0).abs() < 1e-9);
        assert_eq!(rows[1].count, 1);
        assert_eq!(rows[1].offloaded, 0);
        assert_eq!(rows[1].mean_abs_error, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!InvocationTrace::new(4).to_string().is_empty());
    }

    #[test]
    fn csv_round_trips_through_rfc4180_parser() {
        let mut t = InvocationTrace::new(8);
        t.record(rec(SyscallId::Read, 2_000, Some(1_950), true));
        t.record(rec(SyscallId::GetPid, 130, None, false));
        let parsed = csv::parse(&t.to_csv());
        assert_eq!(parsed.len(), 3);
        assert_eq!(
            parsed[0].join(","),
            InvocationRecord::CSV_HEADER,
            "header fields are plain"
        );
        for (row, r) in parsed[1..].iter().zip(t.iter()) {
            assert_eq!(row.len(), 9);
            assert_eq!(row[0], r.thread.to_string());
            assert_eq!(row[1], r.syscall.to_string());
            assert_eq!(row[2], format!("{:#x}", r.astate));
            assert_eq!(row[3], r.predicted.map_or(String::new(), |p| p.to_string()));
            assert_eq!(row[4], r.offloaded.to_string());
            assert_eq!(row[5], r.actual_len.to_string());
            assert_eq!(row[8], r.total_cycles.to_string());
        }
        // Escaping keeps a hostile name a single field.
        let hostile = csv::field("open,\"really\"");
        let row = csv::parse(&format!("0,{hostile},1\n"));
        assert_eq!(row[0], vec!["0", "open,\"really\"", "1"]);
    }

    #[test]
    fn eviction_accounting_exact_at_small_capacities() {
        // Capacity 0: disabled — nothing retained, nothing evicted.
        let mut t0 = InvocationTrace::new(0);
        for i in 0..10u64 {
            let mut r = rec(SyscallId::Read, 100, None, false);
            r.astate = i;
            t0.record(r);
        }
        assert_eq!((t0.len(), t0.dropped()), (0, 0));

        // Capacity 1: exactly the newest survives; the rest are counted.
        let mut t1 = InvocationTrace::new(1);
        for i in 0..10u64 {
            let mut r = rec(SyscallId::Read, 100, None, false);
            r.astate = i;
            t1.record(r);
        }
        assert_eq!((t1.len(), t1.dropped()), (1, 9));
        assert_eq!(t1.iter().next().unwrap().astate, 9);

        // Capacity < n: retained + dropped always equals records offered.
        let mut t4 = InvocationTrace::new(4);
        for i in 0..10u64 {
            let mut r = rec(SyscallId::Read, 100, None, false);
            r.astate = i;
            t4.record(r);
            assert_eq!(t4.len() as u64 + t4.dropped(), i + 1);
        }
        assert_eq!((t4.len(), t4.dropped()), (4, 6));
        let astates: Vec<u64> = t4.iter().map(|r| r.astate).collect();
        assert_eq!(astates, vec![6, 7, 8, 9]);
    }

    #[test]
    fn consume_accepts_only_invocation_events() {
        let inv = Event {
            ts: 500,
            dur: 80,
            track: Track::Thread(2),
            kind: EventKind::Invocation {
                name: "read",
                trap: SyscallId::Read.trap_number(),
                astate: 0x42,
                predicted: Some(64),
                offloaded: true,
                actual_len: 70,
                queue_delay: 5,
            },
        };
        let mut t = InvocationTrace::new(4);
        t.consume(&inv);
        t.consume(&Event {
            ts: 600,
            dur: 0,
            track: Track::Control,
            kind: EventKind::Epoch {
                index: 0,
                l2_hit_rate: 0.9,
            },
        });
        let mut unknown = inv.clone();
        if let EventKind::Invocation { trap, .. } = &mut unknown.kind {
            *trap = 0xDEAD_BEEF;
        }
        t.consume(&unknown);
        assert_eq!(t.len(), 1, "only the known invocation lands");
        let r = t.iter().next().unwrap();
        assert_eq!(r.thread, 2);
        assert_eq!(r.syscall, SyscallId::Read);
        assert_eq!(r.entry_cycle, 500);
        assert_eq!(r.total_cycles, 80);
        assert_eq!(r.queue_delay, 5);

        let mut off = InvocationTrace::new(0);
        off.consume(&inv);
        assert!(off.is_empty(), "disabled trace consumes nothing");
    }
}
