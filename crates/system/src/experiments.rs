//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each function reproduces one artefact of the evaluation:
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`fig1`] | Figure 1 — overhead of software-instrumenting all OS entry points |
//! | [`fig3`] | Figure 3 — binary off-load decision accuracy vs threshold `N` |
//! | [`fig4`] | Figure 4 — normalized IPC vs `N` across migration latencies |
//! | [`fig5`] | Figure 5 — SI vs DI vs HI at conservative/aggressive latencies |
//! | [`table3`] | Table III — OS-core utilisation vs `N` |
//! | [`scalability`] | §V-C — user-core scaling against one OS core |
//! | [`fig6_scalability`] | "Figure 6" — N user × M OS cores, per dispatch policy (beyond the paper) |
//! | [`predictor_accuracy`] | §III-A — exact/±5% accuracy, CAM vs RAM, sizing |
//! | [`tuner_trace`] | §III-B — dynamic-`N` estimator convergence |
//!
//! The paper's runs simulate hundreds of millions of instructions on
//! Simics; this reproduction exposes a [`Scale`] knob so the same
//! experiment can run as a quick smoke test or a full (minutes-long)
//! regeneration. Shapes are stable across scales; absolute numbers
//! tighten as runs lengthen.
//!
//! Every driver also comes in a `*_with` variant taking an
//! [`Evaluator`] — the hook the `osoffload-runner` crate uses to first
//! *enumerate* a driver's simulation points (recording each requested
//! [`SystemConfig`]) and later *replay* it against reports computed in
//! parallel. The enumeration order of every driver is independent of
//! the report values, which is what makes that two-pass scheme exact.

use crate::config::{PolicyKind, SystemConfig};
use crate::metrics::{BinaryPoint, SimReport};
use crate::simulation::Simulation;
use osoffload_core::{TunerConfig, TunerEvent};
use osoffload_workload::Profile;

/// Simulation length preset for the experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Instructions in the measured region of interest, per run.
    pub instructions: u64,
    /// Warm-up instructions, per run.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// How many of the six compute profiles represent the compute group
    /// (the paper averages them into one curve; fewer representatives
    /// make quick runs quicker).
    pub compute_profiles: usize,
}

impl Scale {
    /// Smoke-test scale: seconds per experiment, shapes visible but
    /// noisy.
    pub fn quick() -> Self {
        Scale {
            instructions: 500_000,
            warmup: 300_000,
            seed: 0xF1605,
            compute_profiles: 1,
        }
    }

    /// Default scale: minutes per experiment, stable shapes.
    pub fn full() -> Self {
        Scale {
            instructions: 2_500_000,
            warmup: 2_000_000,
            seed: 0xF1605,
            compute_profiles: 3,
        }
    }

    /// Long scale for final reporting.
    pub fn paper() -> Self {
        Scale {
            instructions: 6_000_000,
            warmup: 4_000_000,
            seed: 0xF1605,
            compute_profiles: 6,
        }
    }

    /// Parses `quick` / `full` / `paper` (used by the bench binaries).
    pub fn from_arg(arg: &str) -> Option<Scale> {
        match arg {
            "quick" | "--quick" => Some(Scale::quick()),
            "full" | "--full" => Some(Scale::full()),
            "paper" | "--paper" => Some(Scale::paper()),
            _ => None,
        }
    }
}

/// The workload groups every figure iterates over: the three server
/// benchmarks individually plus the compute group (averaged, as in the
/// paper's graphs).
pub fn workload_groups(scale: Scale) -> Vec<(String, Vec<Profile>)> {
    let mut groups: Vec<(String, Vec<Profile>)> = Profile::all_server()
        .into_iter()
        .map(|p| (p.name.to_string(), vec![p]))
        .collect();
    let compute: Vec<Profile> = Profile::all_compute()
        .into_iter()
        .take(scale.compute_profiles.max(1))
        .collect();
    groups.push(("compute".to_string(), compute));
    groups
}

/// How a driver executes one configured run.
///
/// The sequential default is [`simulate`]; the parallel runner swaps in
/// a recording closure (enumeration pass) and then a replaying closure
/// serving reports that were computed concurrently.
pub type Evaluator<'a> = &'a mut dyn FnMut(SystemConfig) -> SimReport;

/// The sequential evaluator: simulate the configuration in place.
pub fn simulate(cfg: SystemConfig) -> SimReport {
    Simulation::new(cfg).run()
}

/// Builds the standard experiment topology as a [`SystemConfig`].
pub fn single_config(
    profile: Profile,
    policy: PolicyKind,
    migration_latency: u64,
    user_cores: usize,
    scale: Scale,
) -> SystemConfig {
    SystemConfig::builder()
        .profile(profile)
        .policy(policy)
        .migration_latency(migration_latency)
        .user_cores(user_cores)
        .instructions(scale.instructions)
        .warmup(scale.warmup)
        .seed(scale.seed)
        .build()
}

/// Runs one simulation with the standard experiment topology.
pub fn run_single(
    profile: Profile,
    policy: PolicyKind,
    migration_latency: u64,
    user_cores: usize,
    scale: Scale,
) -> SimReport {
    simulate(single_config(
        profile,
        policy,
        migration_latency,
        user_cores,
        scale,
    ))
}

/// Baseline reports for a profile group, computed once and reused.
fn group_baselines(
    profiles: &[Profile],
    scale: Scale,
    eval: &mut dyn FnMut(SystemConfig) -> SimReport,
) -> Vec<SimReport> {
    profiles
        .iter()
        .map(|p| eval(single_config(p.clone(), PolicyKind::Baseline, 0, 1, scale)))
        .collect()
}

/// Mean normalized throughput of a profile group under `policy` relative
/// to the precomputed per-profile baselines.
fn group_normalized(
    profiles: &[Profile],
    baselines: &[SimReport],
    policy: PolicyKind,
    latency: u64,
    scale: Scale,
    eval: &mut dyn FnMut(SystemConfig) -> SimReport,
) -> f64 {
    let mut acc = 0.0;
    for (p, base) in profiles.iter().zip(baselines) {
        let run = eval(single_config(p.clone(), policy, latency, 1, scale));
        acc += run.normalized_to(base);
    }
    acc / profiles.len() as f64
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// One bar of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Workload group.
    pub workload: String,
    /// Per-entry instrumentation cost in cycles.
    pub cost: u64,
    /// Throughput loss relative to the uninstrumented baseline, in
    /// percent (positive = slower).
    pub overhead_pct: f64,
}

/// Figure 1: runtime overhead of dynamic *software* instrumentation of
/// all possible OS off-loading points.
///
/// "All possible" includes the SPARC register-window spill/fill traps
/// (§IV), which fire every couple of thousand instructions — so both the
/// baseline and the instrumented run enable them. Every OS entry pays
/// the instrumentation cost but off-loading itself is disabled
/// (threshold = ∞), isolating pure decision overhead — the paper's
/// argument for single-cycle hardware decisions.
pub fn fig1(scale: Scale, costs: &[u64]) -> Vec<Fig1Row> {
    fig1_with(scale, costs, &mut simulate)
}

/// [`fig1`] with a pluggable [`Evaluator`].
pub fn fig1_with(scale: Scale, costs: &[u64], eval: Evaluator<'_>) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for (name, profiles) in workload_groups(scale) {
        let profiles: Vec<Profile> = profiles
            .into_iter()
            .map(|mut p| {
                p.include_spill_fill = true;
                p
            })
            .collect();
        let baselines = group_baselines(&profiles, scale, eval);
        for &cost in costs {
            let policy = PolicyKind::DynamicInstrumentation {
                threshold: u64::MAX,
                cost,
            };
            let mut acc = 0.0;
            for (p, base) in profiles.iter().zip(&baselines) {
                let instr = eval(single_config(p.clone(), policy, 0, 1, scale));
                acc += (1.0 - instr.normalized_to(base)) * 100.0;
            }
            rows.push(Fig1Row {
                workload: name.clone(),
                cost,
                overhead_pct: acc / profiles.len() as f64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------

/// One curve of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Workload group.
    pub workload: String,
    /// `(threshold, binary accuracy)` points.
    pub points: Vec<BinaryPoint>,
}

/// Figure 3: binary prediction hit rate for core-migration trigger
/// thresholds — whether `(predicted > N) == (actual > N)` across the
/// paper's `N` grid.
pub fn fig3(scale: Scale) -> Vec<Fig3Row> {
    fig3_with(scale, &mut simulate)
}

/// [`fig3`] with a pluggable [`Evaluator`].
pub fn fig3_with(scale: Scale, eval: Evaluator<'_>) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for (name, profiles) in workload_groups(scale) {
        let mut merged: Vec<BinaryPoint> = Vec::new();
        for p in &profiles {
            let r = eval(single_config(
                p.clone(),
                PolicyKind::HardwarePredictor { threshold: 1_000 },
                1_000,
                1,
                scale,
            ));
            if merged.is_empty() {
                merged = r.binary_accuracy.clone();
            } else {
                for (m, b) in merged.iter_mut().zip(r.binary_accuracy.iter()) {
                    m.accuracy += b.accuracy;
                }
            }
        }
        for m in &mut merged {
            m.accuracy /= profiles.len() as f64;
        }
        rows.push(Fig3Row {
            workload: name,
            points: merged,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// One point of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Cell {
    /// Workload group.
    pub workload: String,
    /// One-way off-loading latency in cycles.
    pub latency: u64,
    /// Off-load threshold `N`.
    pub threshold: u64,
    /// Throughput normalized to the single-core baseline.
    pub normalized_ipc: f64,
}

/// The threshold grid of Figure 4's x-axis.
pub const FIG4_THRESHOLDS: &[u64] = &[0, 100, 500, 1_000, 5_000, 10_000];

/// The one-way off-loading latencies of Figure 4's curves.
pub const FIG4_LATENCIES: &[u64] = &[0, 100, 500, 1_000, 5_000];

/// Figure 4: normalized IPC relative to the uni-processor baseline when
/// varying the off-loading overhead and the switch trigger threshold.
pub fn fig4(scale: Scale) -> Vec<Fig4Cell> {
    fig4_with_grid(scale, FIG4_LATENCIES, FIG4_THRESHOLDS)
}

/// [`fig4`] over a custom latency/threshold grid.
pub fn fig4_with_grid(scale: Scale, latencies: &[u64], thresholds: &[u64]) -> Vec<Fig4Cell> {
    fig4_grid_with(scale, latencies, thresholds, &mut simulate)
}

/// [`fig4_with_grid`] with a pluggable [`Evaluator`].
pub fn fig4_grid_with(
    scale: Scale,
    latencies: &[u64],
    thresholds: &[u64],
    eval: Evaluator<'_>,
) -> Vec<Fig4Cell> {
    let mut cells = Vec::new();
    for (name, profiles) in workload_groups(scale) {
        // Baselines once per profile.
        let baselines = group_baselines(&profiles, scale, eval);
        for &latency in latencies {
            for &threshold in thresholds {
                let mut acc = 0.0;
                for (p, base) in profiles.iter().zip(baselines.iter()) {
                    let r = eval(single_config(
                        p.clone(),
                        PolicyKind::HardwarePredictor { threshold },
                        latency,
                        1,
                        scale,
                    ));
                    acc += r.normalized_to(base);
                }
                cells.push(Fig4Cell {
                    workload: name.clone(),
                    latency,
                    threshold,
                    normalized_ipc: acc / profiles.len() as f64,
                });
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload group.
    pub workload: String,
    /// `"conservative"` (5,000-cycle) or `"aggressive"` (100-cycle).
    pub latency_label: String,
    /// `SI`, `DI`, or `HI`.
    pub policy: String,
    /// Throughput normalized to the single-core baseline.
    pub normalized: f64,
    /// The threshold `N` the dynamic schemes settled on.
    pub chosen_threshold: Option<u64>,
}

/// The two design points of Figure 5.
pub const FIG5_LATENCIES: &[(&str, u64)] = &[("conservative", 5_000), ("aggressive", 100)];

/// Figure 5: normalized throughput for off-loading with static manual
/// instrumentation (SI), dynamic software instrumentation (DI), and the
/// hardware predictor (HI).
///
/// SI uses the off-line profile with the paper's 2×-latency cutoff. DI
/// and HI pick the best threshold on the Figure 4 grid per workload —
/// the idealised outcome of the §III-B dynamic estimator, which both
/// schemes would run in deployment.
pub fn fig5(scale: Scale) -> Vec<Fig5Row> {
    fig5_with(scale, &mut simulate)
}

/// [`fig5`] with a pluggable [`Evaluator`].
pub fn fig5_with(scale: Scale, eval: Evaluator<'_>) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    let di_cost = 120;
    let si_stub = 25;
    for (name, profiles) in workload_groups(scale) {
        let baselines = group_baselines(&profiles, scale, eval);
        for &(label, latency) in FIG5_LATENCIES {
            // SI: fixed by the off-line profile.
            let si = group_normalized(
                &profiles,
                &baselines,
                PolicyKind::StaticInstrumentation { stub_cost: si_stub },
                latency,
                scale,
                eval,
            );
            rows.push(Fig5Row {
                workload: name.clone(),
                latency_label: label.to_string(),
                policy: "SI".to_string(),
                normalized: si,
                chosen_threshold: None,
            });

            // DI and HI: best threshold over the grid.
            for (policy_name, make) in [
                (
                    "DI",
                    Box::new(move |n: u64| PolicyKind::DynamicInstrumentation {
                        threshold: n,
                        cost: di_cost,
                    }) as Box<dyn Fn(u64) -> PolicyKind>,
                ),
                (
                    "HI",
                    Box::new(|n: u64| PolicyKind::HardwarePredictor { threshold: n })
                        as Box<dyn Fn(u64) -> PolicyKind>,
                ),
            ] {
                let mut best = f64::MIN;
                let mut best_n = 0;
                for &n in FIG4_THRESHOLDS {
                    let v = group_normalized(&profiles, &baselines, make(n), latency, scale, eval);
                    if v > best {
                        best = v;
                        best_n = n;
                    }
                }
                rows.push(Fig5Row {
                    workload: name.clone(),
                    latency_label: label.to_string(),
                    policy: policy_name.to_string(),
                    normalized: best,
                    chosen_threshold: Some(best_n),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Server workload.
    pub workload: String,
    /// `(threshold, fraction of execution time the OS core was busy)`.
    pub utilization: Vec<(u64, f64)>,
}

/// Table III's threshold grid.
pub const TABLE3_THRESHOLDS: &[u64] = &[100, 1_000, 5_000, 10_000];

/// Table III: percentage of total execution time spent on the OS core
/// using selective migration based on threshold `N` (5,000-cycle
/// off-loading overhead, server workloads).
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    table3_with(scale, &mut simulate)
}

/// [`table3`] with a pluggable [`Evaluator`].
pub fn table3_with(scale: Scale, eval: Evaluator<'_>) -> Vec<Table3Row> {
    Profile::all_server()
        .into_iter()
        .map(|p| {
            let utilization = TABLE3_THRESHOLDS
                .iter()
                .map(|&n| {
                    let r = eval(single_config(
                        p.clone(),
                        PolicyKind::HardwarePredictor { threshold: n },
                        5_000,
                        1,
                        scale,
                    ));
                    (n, r.os_core_busy_frac)
                })
                .collect();
            Table3Row {
                workload: p.name.to_string(),
                utilization,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §V-C scalability
// ---------------------------------------------------------------------

/// One row of the §V-C scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityRow {
    /// User cores sharing the single OS core.
    pub user_cores: usize,
    /// Mean OS-core queueing delay in cycles.
    pub mean_queue_delay: f64,
    /// 95th-percentile queueing delay in cycles.
    pub p95_queue_delay: u64,
    /// Aggregate throughput normalized to `user_cores ×` the 1:1
    /// configuration's throughput (1.0 = perfect scaling).
    pub scaling_efficiency: f64,
    /// Aggregate throughput improvement over the same number of user
    /// cores *without* off-loading.
    pub speedup_vs_no_offload: f64,
    /// OS-core busy fraction.
    pub os_core_busy_frac: f64,
}

/// §V-C: scaling 1, 2, and 4 user cores against a single OS core
/// (SPECjbb2005, `N = 100`, 1,000-cycle off-loading overhead).
pub fn scalability(scale: Scale) -> Vec<ScalabilityRow> {
    scalability_with(scale, &mut simulate)
}

/// [`scalability`] with a pluggable [`Evaluator`].
pub fn scalability_with(scale: Scale, eval: Evaluator<'_>) -> Vec<ScalabilityRow> {
    let profile = Profile::specjbb();
    let policy = PolicyKind::HardwarePredictor { threshold: 100 };
    let one_to_one = eval(single_config(profile.clone(), policy, 1_000, 1, scale));
    [1usize, 2, 4]
        .into_iter()
        .map(|cores| {
            let r = eval(single_config(profile.clone(), policy, 1_000, cores, scale));
            let base = eval(single_config(
                profile.clone(),
                PolicyKind::Baseline,
                0,
                cores,
                scale,
            ));
            ScalabilityRow {
                user_cores: cores,
                mean_queue_delay: r.queue.mean_delay,
                p95_queue_delay: r.queue.p95_delay,
                scaling_efficiency: r.throughput / (one_to_one.throughput * cores as f64),
                speedup_vs_no_offload: r.throughput / base.throughput,
                os_core_busy_frac: r.os_core_busy_frac,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// "Figure 6" — N×M many-core scalability (beyond the paper)
// ---------------------------------------------------------------------

/// One point of the Figure 6 many-core campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Workload group.
    pub workload: String,
    /// Dispatch-policy label.
    pub dispatch: String,
    /// User cores in the topology.
    pub user_cores: usize,
    /// OS cores in the topology.
    pub os_cores: usize,
    /// Aggregate throughput (instructions per cycle), averaged over the
    /// group's profiles.
    pub throughput: f64,
    /// Mean OS-core queueing delay in cycles.
    pub mean_queue_delay: f64,
    /// Median queueing delay in cycles (worst profile of the group).
    pub p50_queue_delay: u64,
    /// 95th-percentile queueing delay in cycles (worst profile).
    pub p95_queue_delay: u64,
    /// 99th-percentile queueing delay in cycles (worst profile).
    pub p99_queue_delay: u64,
    /// Mean per-OS-core utilisation across the pool.
    pub mean_os_utilisation: f64,
    /// Utilisation of the busiest OS core — the imbalance signal that
    /// separates the dispatch policies.
    pub max_os_utilisation: f64,
}

/// The user:OS core ratios of the Figure 6 sweep (max 40 cores, within
/// the memory model's 64-core ceiling).
pub const FIG6_RATIOS: &[(usize, usize)] =
    &[(4, 1), (8, 1), (8, 2), (16, 2), (16, 4), (32, 4), (32, 8)];

/// "Figure 6": the many-core scalability campaign the paper stops short
/// of (§V-C ends at 4 user cores × 1 OS core). Sweeps user:OS core
/// ratios per workload group under every [`DispatchPolicy`], with a
/// 500-cycle cold penalty so AState affinity has cache state to exploit
/// (HI, `N = 100`, 1,000-cycle off-loading overhead).
///
/// [`DispatchPolicy`]: crate::topology::DispatchPolicy
pub fn fig6_scalability(scale: Scale) -> Vec<Fig6Row> {
    fig6_scalability_with(scale, &mut simulate)
}

/// [`fig6_scalability`] with a pluggable [`Evaluator`].
pub fn fig6_scalability_with(scale: Scale, eval: Evaluator<'_>) -> Vec<Fig6Row> {
    fig6_scalability_grid_with(
        scale,
        FIG6_RATIOS,
        &crate::topology::DispatchPolicy::ALL,
        eval,
    )
}

/// [`fig6_scalability`] over a custom ratio/policy grid.
pub fn fig6_scalability_grid_with(
    scale: Scale,
    ratios: &[(usize, usize)],
    policies: &[crate::topology::DispatchPolicy],
    eval: Evaluator<'_>,
) -> Vec<Fig6Row> {
    let policy = PolicyKind::HardwarePredictor { threshold: 100 };
    let mut rows = Vec::new();
    for (name, profiles) in workload_groups(scale) {
        for &dispatch in policies {
            for &(user_cores, os_cores) in ratios {
                let mut throughput = 0.0;
                let mut mean_delay = 0.0;
                let (mut p50, mut p95, mut p99) = (0u64, 0u64, 0u64);
                let mut mean_util = 0.0;
                let mut max_util = 0.0f64;
                for p in &profiles {
                    let cfg = SystemConfig::builder()
                        .profile(p.clone())
                        .policy(policy)
                        .migration_latency(1_000)
                        .user_cores(user_cores)
                        .os_cores(os_cores)
                        .dispatch(dispatch)
                        .os_cold_penalty(500)
                        .instructions(scale.instructions)
                        .warmup(scale.warmup)
                        .seed(scale.seed)
                        .build();
                    let r = eval(cfg);
                    throughput += r.throughput;
                    mean_delay += r.queue.mean_delay;
                    p50 = p50.max(r.queue.p50_delay);
                    p95 = p95.max(r.queue.p95_delay);
                    p99 = p99.max(r.queue.p99_delay);
                    let n = r.os_core_utilisation.len().max(1) as f64;
                    mean_util += r.os_core_utilisation.iter().sum::<f64>() / n;
                    max_util = r
                        .os_core_utilisation
                        .iter()
                        .fold(max_util, |a, &b| a.max(b));
                }
                let n = profiles.len() as f64;
                rows.push(Fig6Row {
                    workload: name.clone(),
                    dispatch: dispatch.label().to_string(),
                    user_cores,
                    os_cores,
                    throughput: throughput / n,
                    mean_queue_delay: mean_delay / n,
                    p50_queue_delay: p50,
                    p95_queue_delay: p95,
                    p99_queue_delay: p99,
                    mean_os_utilisation: mean_util / n,
                    max_os_utilisation: max_util,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// §III-A predictor accuracy
// ---------------------------------------------------------------------

/// One row of the predictor-organisation study.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorAccuracyRow {
    /// Workload group.
    pub workload: String,
    /// `"CAM"` or `"direct-mapped"`.
    pub organization: String,
    /// Table entry count.
    pub entries: usize,
    /// Fraction predicted exactly.
    pub exact: f64,
    /// Fraction predicted within ±5% (includes exact).
    pub within_5pct: f64,
    /// Fraction of mispredictions that were underestimates.
    pub underestimates: f64,
}

/// §III-A: run-length prediction accuracy for both hardware
/// organisations across table sizes, per workload group.
pub fn predictor_accuracy(
    scale: Scale,
    cam_sizes: &[usize],
    dm_sizes: &[usize],
) -> Vec<PredictorAccuracyRow> {
    let mut rows = Vec::new();
    for (name, profiles) in workload_groups(scale) {
        let mut push = |organization: &str, entries: usize, policy: PolicyKind| {
            let mut exact = 0.0;
            let mut close = 0.0;
            let mut under = 0.0;
            for p in profiles.iter() {
                let r = run_single(p.clone(), policy, 1_000, 1, scale);
                let pr = r.predictor.expect("HI reports predictor stats");
                exact += pr.exact;
                close += pr.within_5pct;
                under += pr.underestimates;
            }
            let n = profiles.len() as f64;
            rows.push(PredictorAccuracyRow {
                workload: name.clone(),
                organization: organization.to_string(),
                entries,
                exact: exact / n,
                within_5pct: close / n,
                underestimates: under / n,
            });
        };
        for &entries in cam_sizes {
            push(
                "CAM",
                entries,
                PolicyKind::HardwarePredictorSized {
                    threshold: 1_000,
                    entries,
                },
            );
        }
        for &entries in dm_sizes {
            push(
                "direct-mapped",
                entries,
                PolicyKind::HardwarePredictorDmSized {
                    threshold: 1_000,
                    entries,
                },
            );
        }
    }
    rows
}

// ---------------------------------------------------------------------
// §V-B half-size-L2 comparison
// ---------------------------------------------------------------------

/// One row of the §V-B cache-budget study.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfL2Row {
    /// Workload group.
    pub workload: String,
    /// One-way off-loading latency in cycles.
    pub latency: u64,
    /// Off-loading with two full-size (1 MB) L2s, normalized to the
    /// 1 MB single-core baseline.
    pub full_l2: f64,
    /// Off-loading with two half-size (512 KB) L2s, normalized to the
    /// same baseline — the equal-silicon comparison the paper calls "of
    /// academic value" (§V-B).
    pub half_l2: f64,
}

/// §V-B: "even an off-loading model with two 512 KB L2 caches can
/// out-perform the single-core baseline with a 1 MB L2 cache if the
/// off-loading latency is under 1,000 cycles."
pub fn half_l2(scale: Scale, latencies: &[u64]) -> Vec<HalfL2Row> {
    let mut rows = Vec::new();
    let policy = PolicyKind::HardwarePredictor { threshold: 100 };
    for (name, profiles) in workload_groups(scale) {
        let baselines = group_baselines(&profiles, scale, &mut simulate);
        for &latency in latencies {
            let full =
                group_normalized(&profiles, &baselines, policy, latency, scale, &mut simulate);
            let mut half_acc = 0.0;
            for (p, base) in profiles.iter().zip(&baselines) {
                let cfg = SystemConfig::builder()
                    .profile(p.clone())
                    .policy(policy)
                    .migration_latency(latency)
                    .instructions(scale.instructions)
                    .warmup(scale.warmup)
                    .seed(scale.seed)
                    .mem_override(osoffload_mem::MemConfig::half_l2_variant(2))
                    .build();
                half_acc += Simulation::new(cfg).run().normalized_to(base);
            }
            rows.push(HalfL2Row {
                workload: name.clone(),
                latency,
                full_l2: full,
                half_l2: half_acc / profiles.len() as f64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// §II off-load mechanism ablation
// ---------------------------------------------------------------------

/// One row of the off-load transport ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismRow {
    /// Workload group.
    pub workload: String,
    /// One-way transport latency in cycles.
    pub latency: u64,
    /// Thread migration (the paper's scheme), normalized to baseline.
    pub thread_migration: f64,
    /// RPC-style message passing (the design point §II leaves on the
    /// table), normalized to baseline.
    pub remote_call: f64,
}

/// §II mechanism ablation: thread migration vs RPC-style off-load. The
/// RPC transport frees the user core during remote execution, so the
/// sibling thread overlaps — quantifying what the paper's untaken design
/// point would have bought.
pub fn mechanism_ablation(scale: Scale, latencies: &[u64]) -> Vec<MechanismRow> {
    use crate::migration::OffloadMechanism;
    let mut rows = Vec::new();
    let policy = PolicyKind::HardwarePredictor { threshold: 100 };
    for (name, profiles) in workload_groups(scale) {
        let baselines = group_baselines(&profiles, scale, &mut simulate);
        for &latency in latencies {
            let run_mech = |mech: OffloadMechanism| {
                let mut acc = 0.0;
                for (p, base) in profiles.iter().zip(&baselines) {
                    let cfg = SystemConfig::builder()
                        .profile(p.clone())
                        .policy(policy)
                        .migration_latency(latency)
                        .mechanism(mech)
                        .instructions(scale.instructions)
                        .warmup(scale.warmup)
                        .seed(scale.seed)
                        .build();
                    acc += Simulation::new(cfg).run().normalized_to(base);
                }
                acc / profiles.len() as f64
            };
            rows.push(MechanismRow {
                workload: name.clone(),
                latency,
                thread_migration: run_mech(OffloadMechanism::ThreadMigration),
                remote_call: run_mech(OffloadMechanism::RemoteCall),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Sensitivity analysis
// ---------------------------------------------------------------------

/// One row of the sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Which substrate parameter was varied.
    pub parameter: String,
    /// The value it was set to (cycles or bytes, per the parameter).
    pub value: u64,
    /// Off-loading benefit (HI, N = 100, 1,000-cycle migration) under
    /// that substrate, normalized to a baseline sharing it.
    pub normalized: f64,
}

/// Robustness check: how does the off-loading benefit move when the
/// memory-system parameters around it change? Both the baseline and the
/// off-loading run share each varied substrate, so the ratio isolates
/// the policy's benefit from the substrate shift itself.
pub fn sensitivity(scale: Scale, profile: Profile) -> Vec<SensitivityRow> {
    sensitivity_with(scale, profile, &mut simulate)
}

/// [`sensitivity`] with a pluggable [`Evaluator`].
pub fn sensitivity_with(
    scale: Scale,
    profile: Profile,
    eval: Evaluator<'_>,
) -> Vec<SensitivityRow> {
    use osoffload_mem::{CacheGeometry, MemConfig};
    let policy = PolicyKind::HardwarePredictor { threshold: 100 };
    let mut rows = Vec::new();

    let mut probe = |parameter: &str, value: u64, patch: &dyn Fn(&mut MemConfig)| {
        let mut run = |kind: PolicyKind| {
            // The off-loading topology has one more core than baseline.
            let cores = if kind.is_baseline() { 1 } else { 2 };
            let mut mem = MemConfig::paper_baseline(cores);
            patch(&mut mem);
            let cfg = SystemConfig::builder()
                .profile(profile.clone())
                .policy(kind)
                .migration_latency(1_000)
                .instructions(scale.instructions)
                .warmup(scale.warmup)
                .seed(scale.seed)
                .mem_override(mem)
                .build();
            eval(cfg)
        };
        let base = run(PolicyKind::Baseline);
        let offl = run(policy);
        rows.push(SensitivityRow {
            parameter: parameter.to_string(),
            value,
            normalized: offl.normalized_to(&base),
        });
    };

    for kb in [512u64, 1_024, 2_048] {
        probe("l2_kb", kb, &move |m: &mut MemConfig| {
            m.l2 = CacheGeometry::new(kb * 1024, 16);
        });
    }
    for lat in [200u64, 350, 500] {
        probe("dram_latency", lat, &move |m: &mut MemConfig| {
            m.dram_latency = lat;
        });
    }
    for c2c in [20u64, 40, 80] {
        probe("c2c_latency", c2c, &move |m: &mut MemConfig| {
            m.interconnect = osoffload_mem::Interconnect::new(
                m.interconnect.directory_lookup,
                c2c,
                m.interconnect.invalidation,
            );
        });
    }
    rows
}

// ---------------------------------------------------------------------
// §III-B tuner trace
// ---------------------------------------------------------------------

/// §III-B: runs the dynamic threshold estimator and returns the final
/// report plus the full decision log.
///
/// Epoch lengths are scaled down from the paper's 25 M/100 M instruction
/// epochs in proportion to the run length, so the estimator completes
/// several sample/stable rounds within the simulated window.
pub fn tuner_trace(scale: Scale, profile: Profile) -> (SimReport, Vec<TunerEvent>) {
    // Aim for ~40 sampling epochs within the measured region.
    let divisor = (25_000_000 / (scale.instructions / 40).max(1)).max(1);
    let cfg = SystemConfig::builder()
        .profile(profile)
        .policy(PolicyKind::HardwarePredictor { threshold: 1_000 })
        .migration_latency(1_000)
        .instructions(scale.instructions)
        .warmup(scale.warmup)
        .seed(scale.seed)
        .tuner(TunerConfig::scaled_down(divisor))
        .build();
    Simulation::new(cfg).run_with_tuner_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            instructions: 120_000,
            warmup: 60_000,
            seed: 7,
            compute_profiles: 1,
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_arg("quick"), Some(Scale::quick()));
        assert_eq!(Scale::from_arg("--paper"), Some(Scale::paper()));
        assert_eq!(Scale::from_arg("bogus"), None);
    }

    #[test]
    fn workload_groups_cover_servers_and_compute() {
        let groups = workload_groups(tiny());
        let names: Vec<&str> = groups.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["apache", "specjbb2005", "derby", "compute"]);
        assert_eq!(groups[3].1.len(), 1);
    }

    #[test]
    fn fig1_reports_positive_overhead_for_servers() {
        let rows = fig1(tiny(), &[200]);
        let apache = rows.iter().find(|r| r.workload == "apache").unwrap();
        assert!(
            apache.overhead_pct > 0.0,
            "apache overhead = {}",
            apache.overhead_pct
        );
    }

    #[test]
    fn fig3_has_full_grid() {
        let rows = fig3(tiny());
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert_eq!(row.points.len(), 5);
            for p in row.points {
                assert!((0.0..=1.0).contains(&p.accuracy));
            }
        }
    }

    #[test]
    fn fig4_grid_dimensions() {
        let cells = fig4_with_grid(tiny(), &[100], &[100, 10_000]);
        assert_eq!(cells.len(), 4 * 2);
        assert!(cells.iter().all(|c| c.normalized_ipc > 0.0));
    }

    #[test]
    fn table3_covers_server_workloads() {
        let rows = table3(tiny());
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.utilization.len(), 4);
        }
    }

    #[test]
    fn scalability_rows_scale_cores() {
        let rows = scalability(tiny());
        let cores: Vec<usize> = rows.iter().map(|r| r.user_cores).collect();
        assert_eq!(cores, vec![1, 2, 4]);
        // Queue delays grow with sharing.
        assert!(rows[2].mean_queue_delay >= rows[0].mean_queue_delay);
    }

    #[test]
    fn fig6_grid_covers_every_ratio_and_policy() {
        use crate::topology::DispatchPolicy;
        let ratios = &[(2, 1), (2, 2)];
        let policies = &[DispatchPolicy::LeastLoaded, DispatchPolicy::RoundRobin];
        let rows = fig6_scalability_grid_with(tiny(), ratios, policies, &mut simulate);
        assert_eq!(rows.len(), 4 * 2 * 2);
        for row in &rows {
            assert!(row.throughput > 0.0, "{row:?}");
            assert!(
                (0.0..=1.0).contains(&row.mean_os_utilisation)
                    && row.max_os_utilisation >= row.mean_os_utilisation,
                "{row:?}"
            );
            assert!(row.p50_queue_delay <= row.p95_queue_delay);
            assert!(row.p95_queue_delay <= row.p99_queue_delay);
        }
        // Both policies produced distinct, labelled rows for each cell.
        let ll = rows.iter().filter(|r| r.dispatch == "least-loaded").count();
        let rr = rows.iter().filter(|r| r.dispatch == "round-robin").count();
        assert_eq!((ll, rr), (8, 8));
    }

    #[test]
    fn predictor_accuracy_rows() {
        let rows = predictor_accuracy(tiny(), &[200], &[1500]);
        assert_eq!(rows.len(), 4 * 2);
        assert!(rows.iter().all(|r| r.within_5pct >= r.exact));
    }

    #[test]
    fn half_l2_rows_cover_grid() {
        let rows = half_l2(tiny(), &[100]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.full_l2 > 0.0 && r.half_l2 > 0.0);
        }
    }

    #[test]
    fn remote_call_never_slower_for_servers() {
        let rows = mechanism_ablation(tiny(), &[1_000]);
        let apache = rows.iter().find(|r| r.workload == "apache").unwrap();
        assert!(
            apache.remote_call >= apache.thread_migration * 0.98,
            "RPC {:.3} vs migration {:.3}",
            apache.remote_call,
            apache.thread_migration
        );
    }

    #[test]
    fn sensitivity_covers_all_parameters() {
        let rows = sensitivity(tiny(), Profile::apache());
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|r| r.normalized > 0.5));
        let params: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.parameter.as_str()).collect();
        assert_eq!(params.len(), 3);
    }

    #[test]
    fn tuner_trace_produces_events() {
        let (report, trace) = tuner_trace(tiny(), Profile::apache());
        assert!(!trace.is_empty());
        assert!(report.tuner_events > 0);
    }
}
