//! The assembled CMP system: simulation engine, migration machinery,
//! configuration, metrics, and the experiment drivers that regenerate
//! every table and figure of the paper.
//!
//! See the [`simulation`] module for the timing model and the
//! [`experiments`] module for the per-figure drivers.
//!
//! # Examples
//!
//! ```
//! use osoffload_system::{Simulation, SystemConfig, PolicyKind};
//! use osoffload_workload::Profile;
//!
//! let cfg = SystemConfig::builder()
//!     .profile(Profile::apache())
//!     .policy(PolicyKind::HardwarePredictor { threshold: 500 })
//!     .migration_latency(1_000)
//!     .instructions(100_000)
//!     .seed(42)
//!     .build();
//! let report = Simulation::new(cfg).run();
//! assert!(report.offloads > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod lanes;
pub mod metrics;
pub mod migration;
pub mod profile;
pub mod simulation;
pub mod topology;
pub mod trace;

pub use config::{ConfigError, PolicyKind, SystemConfig, SystemConfigBuilder};
pub use lanes::{run_lanes, tape_compatible, LaneStepper, TapeRegistry};
pub use metrics::{BinaryPoint, CycleBreakdown, PredictorReport, QueueReport, SimReport};
pub use migration::{MigrationModel, OffloadMechanism, OsCoreQueue};
pub use profile::{CycleProfile, Phase, ProfileEntry, ProfileEpoch};
pub use simulation::Simulation;
pub use topology::{DispatchPolicy, OsCorePool, OsDispatch, OsToken, Topology};
pub use trace::{InvocationRecord, InvocationTrace};
