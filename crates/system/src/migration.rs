//! Thread migration and OS-core queueing.
//!
//! The paper parameterises the *migration implementation* (§II): the
//! conservative design point is ~5,000 cycles one-way (unmodified Linux
//! 2.6.18 thread migration), the aggressive point is ~100 cycles (Brown &
//! Tullsen's hardware-supported switching). §V-C adds the queueing
//! dimension: a non-SMT OS core serves one off-loaded invocation at a
//! time, so concurrent requests stall — with 4 user cores the paper
//! measures queueing delays exploding past 25,000 cycles.
//!
//! ## Queue semantics (fixed)
//!
//! [`OsCoreQueue`] is the paper's single-server model and deliberately
//! admits **one request at a time**: a second `acquire` before `release`
//! panics rather than corrupting busy-time accounting, even when spare
//! SMT contexts are idle. Overlapping service — multiple requests in
//! flight, released in any order, each holding a per-context reservation
//! token — is provided by [`OsCorePool`](crate::topology::OsCorePool),
//! which generalises this queue to N OS cores × k contexts and is what
//! [`Simulation`](crate::Simulation) now drives. With one core, one
//! context and the default dispatch policy the pool is cycle-for-cycle
//! identical to this queue, which stays exported as the reference
//! single-server model.

use core::fmt;
use osoffload_sim::{Counter, Cycle, Histogram, RunningStats};

/// How an off-loaded invocation reaches the OS core (§II, "Migration
/// Implementations").
///
/// The paper's schemes physically migrate the thread: its architected
/// state moves to the OS core and back, and the user core sits reserved
/// for the round trip. §II also notes that "remote procedure calls, and
/// message passing interfaces within the operating system … have the
/// potential to lower inter-core communication cost substantially and
/// are an interesting design point though we do not consider them in
/// this study". [`RemoteCall`](OffloadMechanism::RemoteCall) models that
/// design point: only a request/response message crosses the fabric, and
/// the user core is *released* while the OS core works — its sibling
/// thread may run, buying overlap the migration scheme cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffloadMechanism {
    /// Full thread migration (the paper's mechanism).
    #[default]
    ThreadMigration,
    /// Request/response message passing; the user core is freed during
    /// remote execution.
    RemoteCall,
}

/// Latency model for one thread migration.
///
/// # Examples
///
/// ```
/// use osoffload_system::MigrationModel;
///
/// let conservative = MigrationModel::conservative();
/// let aggressive = MigrationModel::aggressive();
/// assert_eq!(conservative.one_way().as_u64(), 5_000);
/// assert_eq!(aggressive.one_way().as_u64(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationModel {
    one_way: u64,
}

impl MigrationModel {
    /// Creates a model with the given one-way migration latency in
    /// cycles.
    pub fn new(one_way_cycles: u64) -> Self {
        MigrationModel {
            one_way: one_way_cycles,
        }
    }

    /// The paper's conservative design point: ~5,000 cycles, measured on
    /// an unmodified Linux 2.6.18 kernel (§II).
    pub fn conservative() -> Self {
        MigrationModel::new(5_000)
    }

    /// The paper's aggressive design point: ~100 cycles with hardware
    /// support for thread switching (Brown & Tullsen \[9\]).
    pub fn aggressive() -> Self {
        MigrationModel::new(100)
    }

    /// One-way migration latency.
    pub fn one_way(&self) -> Cycle {
        Cycle::new(self.one_way)
    }

    /// Latency of a full off-load round trip (out and back), excluding
    /// queueing and execution. Saturates instead of wrapping on absurd
    /// latencies; [`SystemConfig::validate`](crate::SystemConfig)
    /// rejects such configs up front.
    pub fn round_trip(&self) -> Cycle {
        Cycle::new(self.one_way.saturating_mul(2))
    }
}

/// The single-server queue in front of the OS core.
///
/// The OS core is not multi-threaded: "if the OS core is handling an
/// off-loading request when an additional request comes in, the new
/// request must be stalled until the OS core becomes free" (§V-C).
///
/// # Examples
///
/// ```
/// use osoffload_system::OsCoreQueue;
/// use osoffload_sim::Cycle;
///
/// let mut q = OsCoreQueue::new();
/// // First request at t=100 starts immediately.
/// let start = q.acquire(Cycle::new(100));
/// assert_eq!(start, Cycle::new(100));
/// q.release(Cycle::new(900));
/// // A request arriving while busy would have waited; at t=950 it's free.
/// assert_eq!(q.acquire(Cycle::new(950)), Cycle::new(950));
/// ```
#[derive(Debug, Clone)]
pub struct OsCoreQueue {
    /// Next-free time of each hardware context. The paper's OS core has
    /// exactly one; the SMT extension provisions more.
    contexts: Vec<Cycle>,
    /// Index of the context handed out by the in-flight `acquire`.
    in_flight: Option<usize>,
    busy: Cycle,
    requests: Counter,
    stalled: Counter,
    queue_delay: RunningStats,
    queue_delay_hist: Histogram,
}

impl OsCoreQueue {
    /// Creates an idle single-context queue (the paper's non-SMT OS
    /// core).
    pub fn new() -> Self {
        Self::with_contexts(1)
    }

    /// Creates a queue with `contexts` SMT hardware contexts: up to that
    /// many off-loaded invocations are served concurrently. The model is
    /// optimistic (contexts do not slow each other down beyond their
    /// shared caches), bounding what SMT could buy the §V-C provisioning
    /// problem.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    pub fn with_contexts(contexts: usize) -> Self {
        assert!(contexts > 0, "OsCoreQueue: need at least one context");
        OsCoreQueue {
            contexts: vec![Cycle::ZERO; contexts],
            in_flight: None,
            busy: Cycle::ZERO,
            requests: Counter::new(),
            stalled: Counter::new(),
            queue_delay: RunningStats::new(),
            queue_delay_hist: Histogram::new(),
        }
    }

    /// Number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Admits a request arriving at `arrival`; returns the cycle at which
    /// the OS core starts serving it.
    ///
    /// # Panics
    ///
    /// Panics if a previous [`acquire`](Self::acquire) has not been
    /// matched by [`release`](Self::release) (the simulator fully
    /// processes one off-load before admitting the next).
    pub fn acquire(&mut self, arrival: Cycle) -> Cycle {
        assert!(
            self.in_flight.is_none(),
            "OsCoreQueue: acquire while in flight"
        );
        self.requests.incr();
        // Earliest-free context serves the request.
        let (slot, &free_at) = self
            .contexts
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one context");
        let start = arrival.max(free_at);
        let delay = start - arrival;
        if delay > Cycle::ZERO {
            self.stalled.incr();
        }
        self.queue_delay.record(delay.as_f64());
        self.queue_delay_hist.record(delay.as_u64());
        self.in_flight = Some(slot);
        self.contexts[slot] = Cycle::MAX;
        start
    }

    /// Marks the serving context free again at `end` (the service
    /// completion time).
    ///
    /// # Panics
    ///
    /// Panics if called without a matching [`acquire`](Self::acquire).
    pub fn release(&mut self, end: Cycle) {
        let slot = self
            .in_flight
            .take()
            .expect("OsCoreQueue: release without acquire");
        self.contexts[slot] = end;
    }

    /// Adds `cycles` of service to the busy-time account (Table III's
    /// OS-core utilisation numerator).
    pub fn add_busy(&mut self, cycles: Cycle) {
        self.busy += cycles;
    }

    /// Whether an acquire is currently outstanding.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Total requests admitted.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Requests that had to wait.
    pub fn stalled(&self) -> u64 {
        self.stalled.get()
    }

    /// Queue-delay statistics (cycles).
    pub fn queue_delay(&self) -> &RunningStats {
        &self.queue_delay
    }

    /// Queue-delay distribution.
    pub fn queue_delay_hist(&self) -> &Histogram {
        &self.queue_delay_hist
    }

    /// Accumulated OS-core busy time.
    pub fn busy(&self) -> Cycle {
        self.busy
    }

    /// Clears statistics (after warm-up) without touching queue state.
    pub fn reset_stats(&mut self) {
        self.busy = Cycle::ZERO;
        self.requests.take();
        self.stalled.take();
        self.queue_delay = RunningStats::new();
        self.queue_delay_hist = Histogram::new();
    }
}

impl Default for OsCoreQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for OsCoreQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests ({} stalled), mean queue delay {:.0} cyc",
            self.requests.get(),
            self.stalled.get(),
            self.queue_delay.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_design_points() {
        assert_eq!(
            MigrationModel::conservative().round_trip(),
            Cycle::new(10_000)
        );
        assert_eq!(MigrationModel::aggressive().round_trip(), Cycle::new(200));
        assert_eq!(MigrationModel::new(0).one_way(), Cycle::ZERO);
    }

    #[test]
    fn round_trip_saturates_instead_of_wrapping() {
        let absurd = MigrationModel::new(u64::MAX - 3);
        assert_eq!(absurd.round_trip(), Cycle::new(u64::MAX));
        // Just under the edge still doubles exactly.
        let edge = MigrationModel::new(u64::MAX / 2);
        assert_eq!(edge.round_trip(), Cycle::new(u64::MAX - 1));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut q = OsCoreQueue::new();
        let s1 = q.acquire(Cycle::new(100));
        assert_eq!(s1, Cycle::new(100));
        q.release(Cycle::new(1_100)); // served 1,000 cycles

        // Next arrival at 600 would have waited 500 — but it arrives
        // after release bookkeeping, so we emulate the overlap case by
        // acquiring before release in the next pair.
        let s2 = q.acquire(Cycle::new(600));
        assert_eq!(s2, Cycle::new(1_100), "stalls until the core frees");
        q.release(Cycle::new(1_500));
        assert_eq!(q.stalled(), 1);
        assert_eq!(q.requests(), 2);
        assert!(q.queue_delay().mean() > 0.0);
    }

    #[test]
    fn idle_core_serves_immediately() {
        let mut q = OsCoreQueue::new();
        q.acquire(Cycle::new(50));
        q.release(Cycle::new(60));
        let s = q.acquire(Cycle::new(1_000));
        assert_eq!(s, Cycle::new(1_000));
        assert_eq!(q.stalled(), 0);
    }

    #[test]
    fn busy_flag_tracks_acquire_release() {
        let mut q = OsCoreQueue::new();
        assert!(!q.is_busy());
        q.acquire(Cycle::new(1));
        assert!(q.is_busy());
        q.release(Cycle::new(5));
        assert!(!q.is_busy());
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_without_acquire_panics() {
        OsCoreQueue::new().release(Cycle::new(1));
    }

    #[test]
    fn busy_time_accumulates_and_resets() {
        let mut q = OsCoreQueue::new();
        q.add_busy(Cycle::new(500));
        q.add_busy(Cycle::new(250));
        assert_eq!(q.busy(), Cycle::new(750));
        q.reset_stats();
        assert_eq!(q.busy(), Cycle::ZERO);
        assert_eq!(q.requests(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!OsCoreQueue::new().to_string().is_empty());
    }
}
