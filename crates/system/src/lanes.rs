//! Lane-parallel sweep execution: advance K co-resident simulations in
//! lockstep over a shared workload tape.
//!
//! Every figure/table sweep evaluates the *same* workload shape
//! (profile, phase schedule, thread count, seed) under many policy ×
//! latency × threshold points. Run scalar, each point regenerates and
//! re-draws the whole instruction stream — roughly a third of point
//! runtime on the fig4 grid. The [`LaneStepper`] instead records the
//! stream once into a [`WorkloadTape`] and replays it into K lanes:
//! the generation cost of a whole sweep group is paid once (see
//! [`TapeRegistry`]), and replay is a linear scan over packed
//! 17-byte records instead of a chain of RNG and sampler draws.
//!
//! Lanes are scheduled by minimum retired-instruction count, each lane
//! advancing up to a *quantum* of retired instructions per turn. With
//! tapes fully materialised up front the best schedule is the
//! degenerate one — run each lane to completion before starting the
//! next (the default, `quantum = u64::MAX`): interleaving turns evicts
//! every other lane's simulated cache/TLB/predictor arrays from the
//! host cache and measures slower at every width we tried. Bounded
//! quanta (`OSOFFLOAD_LANE_QUANTUM`) remain for experiments that want
//! the cursors to move through the tape together. Either way a lane
//! that reaches its budget falls out of the rotation, stragglers catch
//! up scalar-style, and rejoining costs nothing — each lane owns its
//! complete architectural state, so its report is **bit-identical** to
//! [`Simulation::run`] on the same configuration by construction
//! (`tests/bit_identity.rs` lane matrix and fuzz oracle 8 prove it).
//!
//! The measured regions of all lanes run under a single
//! `alloc_audit` region. That requires the tape to be fully
//! materialised up front: after warm-up the stepper extends every
//! thread's tape past the deepest position any lane can legally reach
//! (its cursor depth plus its measured budget), so replay never grows
//! an array inside the audited region.
//!
//! [`WorkloadTape`]: osoffload_workload::WorkloadTape

use crate::config::{ConfigError, SystemConfig};
use crate::metrics::SimReport;
use crate::simulation::Simulation;
use osoffload_sim::{alloc_audit, Cycle, Instret};
use osoffload_workload::{SharedTape, WorkloadTape};

/// Whether two configurations draw bit-identical workload streams and
/// can therefore share one [`WorkloadTape`](osoffload_workload::WorkloadTape).
///
/// The stream depends only on the profile, the phase schedule, the
/// thread count, and the seed — never on policy, topology, latency, or
/// the memory system, because every policy path executes each drawn
/// segment to exactly its drawn length.
pub fn tape_compatible(a: &SystemConfig, b: &SystemConfig) -> bool {
    a.seed == b.seed
        && a.thread_count() == b.thread_count()
        && a.profile == b.profile
        && a.phases == b.phases
}

/// Default quantum: run each lane to completion before the next starts.
/// Lockstep interleaving only helps when tapes are materialised lazily
/// at the pack frontier; with up-front materialisation it just thrashes
/// per-lane simulator state out of the host cache (measured ~10-20%
/// slower at 64 Ki-instruction quanta on the fig4 grid).
const DEFAULT_QUANTUM: u64 = u64::MAX;

/// A cache of workload tapes keyed by [`tape_compatible`] shape.
///
/// Hold one registry across many [`LaneStepper`] packs and every pack
/// whose configurations share a shape replays the same tape — the
/// generation cost of a whole sweep group is paid exactly once, no
/// matter how the group is chunked into packs.
#[derive(Default)]
pub struct TapeRegistry {
    shapes: Vec<(SystemConfig, SharedTape)>,
}

impl TapeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tape for `cfg`'s workload shape, building it on first use.
    pub fn tape_for(&mut self, cfg: &SystemConfig) -> SharedTape {
        match self
            .shapes
            .iter()
            .find(|(rep, _)| tape_compatible(rep, cfg))
        {
            Some((_, tape)) => tape.clone(),
            None => {
                let tape =
                    WorkloadTape::new(&cfg.profile, &cfg.phases, cfg.thread_count(), cfg.seed)
                        .into_shared();
                self.shapes.push((cfg.clone(), tape.clone()));
                tape
            }
        }
    }
}

struct Lane {
    sim: Simulation,
    /// Index into the pack's tape list of the tape this lane replays.
    tape_idx: usize,
    /// Measured-region instruction budget.
    measure: u64,
    /// Warm-up instruction budget.
    warmup: u64,
}

/// K co-resident simulations advanced in lockstep over shared
/// workload tapes.
///
/// Configurations that are [`tape_compatible`] share one tape; a pack
/// may mix several shapes (each gets its own tape) — scheduling is
/// oblivious to which tape a lane reads.
///
/// # Examples
///
/// ```
/// use osoffload_system::{LaneStepper, Simulation, SystemConfig, PolicyKind};
/// use osoffload_workload::Profile;
///
/// let cfg = |threshold| {
///     SystemConfig::builder()
///         .profile(Profile::apache())
///         .policy(PolicyKind::HardwarePredictor { threshold })
///         .migration_latency(1_000)
///         .instructions(20_000)
///         .warmup(5_000)
///         .seed(42)
///         .build()
/// };
/// let lanes = LaneStepper::new(vec![cfg(100), cfg(5_000)]).unwrap().run();
/// assert_eq!(lanes[0], Simulation::new(cfg(100)).run());
/// assert_eq!(lanes[1], Simulation::new(cfg(5_000)).run());
/// ```
pub struct LaneStepper {
    lanes: Vec<Lane>,
    tapes: Vec<SharedTape>,
    quantum: u64,
}

impl LaneStepper {
    /// Builds one lane per configuration, sharing tapes between
    /// [`tape_compatible`] configurations. Rejects any configuration
    /// that fails [`SystemConfig::validate`].
    pub fn new(configs: Vec<SystemConfig>) -> Result<Self, ConfigError> {
        Self::with_registry(configs, &mut TapeRegistry::new())
    }

    /// Like [`new`](Self::new), but resolves tapes through a
    /// caller-held [`TapeRegistry`], so generation work is shared not
    /// just between the lanes of this pack but across every pack built
    /// from the same registry. [`run_lanes`] uses this to generate each
    /// workload shape exactly once per sweep, however narrow the packs.
    pub fn with_registry(
        configs: Vec<SystemConfig>,
        registry: &mut TapeRegistry,
    ) -> Result<Self, ConfigError> {
        for cfg in &configs {
            cfg.validate()?;
        }
        // Tapes used by this pack, indexed by `Lane::tape_idx`.
        let mut shapes: Vec<(SystemConfig, SharedTape)> = Vec::new();
        let mut lanes = Vec::with_capacity(configs.len());
        for cfg in configs {
            let tape_idx = match shapes
                .iter()
                .position(|(rep, _)| tape_compatible(rep, &cfg))
            {
                Some(idx) => idx,
                None => {
                    shapes.push((cfg.clone(), registry.tape_for(&cfg)));
                    shapes.len() - 1
                }
            };
            let tape = shapes[tape_idx].1.clone();
            // Materialise this lane's whole stream up front (a thread
            // can consume at most the run's total budget): generation
            // is one contiguous pass here instead of being interleaved
            // a segment at a time with warm-up replay.
            {
                let depth = (cfg.warmup + cfg.instructions) as usize;
                let mut tape = tape.borrow_mut();
                for t in 0..tape.thread_count() {
                    tape.extend_to(t, depth);
                }
            }
            lanes.push(Lane {
                tape_idx,
                warmup: cfg.warmup,
                measure: cfg.instructions,
                sim: Simulation::build_on_tape(cfg, tape),
            });
        }
        let tapes = shapes.into_iter().map(|(_, t)| t).collect();
        let quantum = std::env::var("OSOFFLOAD_LANE_QUANTUM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_QUANTUM);
        Ok(LaneStepper {
            lanes,
            tapes,
            quantum,
        })
    }

    /// Number of lanes in the pack.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Runs every lane to completion and returns one report per lane,
    /// in construction order, each bit-identical to
    /// [`Simulation::run`] on the lane's configuration.
    pub fn run(mut self) -> Vec<SimReport> {
        // Warm-up: always step the lane with the fewest retired
        // instructions among those still below their warm-up budget.
        Self::stride(&mut self.lanes, self.quantum, |l| l.warmup);

        // Warm-up → measured transition per lane. All allocating setup
        // (trace, tuner, telemetry) happens here, before the single
        // audited region below.
        let starts: Vec<Cycle> = self
            .lanes
            .iter_mut()
            .map(|l| l.sim.begin_measured())
            .collect();

        // Materialise every thread's tape past the deepest position any
        // lane can legally request. A lane fetches a new segment only
        // while its measured retirement is below its budget, and its
        // per-thread consumption is bounded by total retirement, so a
        // request always starts below `depth-after-warmup + budget`.
        // With whole segments materialised up to that bound, replay
        // inside the audited region never allocates.
        for (ti, tape) in self.tapes.iter().enumerate() {
            let threads = tape.borrow().thread_count();
            for t in 0..threads {
                let need = self
                    .lanes
                    .iter()
                    .filter(|l| l.tape_idx == ti)
                    .map(|l| l.sim.tape_depth(t) + l.measure as usize)
                    .max()
                    .unwrap_or(0);
                tape.borrow_mut().extend_to(t, need);
            }
        }

        // One audited measured region across the whole pack.
        alloc_audit::region_enter();
        Self::stride(&mut self.lanes, self.quantum, |l| l.measure);
        alloc_audit::region_exit();

        self.lanes
            .into_iter()
            .zip(starts)
            .map(|(l, start)| l.sim.finish(start))
            .collect()
    }

    /// Advances lanes in lockstep at `quantum`-instruction granularity:
    /// repeatedly picks the lane with the fewest retired instructions
    /// among those still below `target` and steps it segment by segment
    /// until it has retired another `quantum`. Finished lanes drop out
    /// of the rotation; the last stragglers run scalar-style.
    fn stride(lanes: &mut [Lane], quantum: u64, target: impl Fn(&Lane) -> u64) {
        loop {
            let mut next: Option<(usize, Instret)> = None;
            for (i, l) in lanes.iter().enumerate() {
                let retired = l.sim.retired();
                if retired < Instret::new(target(l)) {
                    let better = match next {
                        Some((_, best)) => retired < best,
                        None => true,
                    };
                    if better {
                        next = Some((i, retired));
                    }
                }
            }
            let Some((i, retired)) = next else { break };
            let stop = Instret::new(
                retired
                    .as_u64()
                    .saturating_add(quantum)
                    .min(target(&lanes[i])),
            );
            while lanes[i].sim.retired() < stop {
                lanes[i].sim.step_segment();
            }
        }
    }
}

/// Runs `configs` through lane packs of at most `width` lanes and
/// returns the reports in input order, each bit-identical to
/// [`Simulation::run`] on that configuration.
///
/// Configurations are grouped by [`tape_compatible`] shape first, so
/// every pack shares a single tape; a `width` of 0 or 1 still goes
/// through the tape machinery one lane at a time (useful for
/// differential testing, but all replay and no sharing — the runner
/// treats `--lanes=1` as "scalar path" instead).
pub fn run_lanes(configs: &[SystemConfig], width: usize) -> Result<Vec<SimReport>, ConfigError> {
    let width = width.max(1);
    // Group input indices by shape, preserving input order per group.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (representative idx, members)
    for (i, cfg) in configs.iter().enumerate() {
        match groups
            .iter_mut()
            .find(|(rep, _)| tape_compatible(&configs[*rep], cfg))
        {
            Some((_, members)) => members.push(i),
            None => groups.push((i, vec![i])),
        }
    }
    let mut out: Vec<Option<SimReport>> = (0..configs.len()).map(|_| None).collect();
    let mut registry = TapeRegistry::new();
    for (_, members) in groups {
        for pack in members.chunks(width) {
            let stepper = LaneStepper::with_registry(
                pack.iter().map(|&i| configs[i].clone()).collect(),
                &mut registry,
            )?;
            for (&i, report) in pack.iter().zip(stepper.run()) {
                out[i] = Some(report);
            }
        }
    }
    Ok(out
        .into_iter()
        .map(|r| r.expect("every index filled"))
        .collect())
}
