//! The OS run-length predictor (§III-A) — the heart of the paper.
//!
//! Two hardware organisations are modelled:
//!
//! * [`CamPredictor`] — a 200-entry fully-associative table (CAM) with
//!   LRU replacement, ~2 KB of storage; the paper's primary design.
//! * [`DirectMappedPredictor`] — a 1,500-entry tag-less direct-mapped RAM
//!   indexed by the low AState bits, ~3.3 KB; the paper's alternative.
//!
//! Both share the update rules:
//!
//! * each entry stores the run length observed the *last* time its AState
//!   was seen, plus a 2-bit saturating confidence counter;
//! * confidence is incremented when a prediction lands within ±5% of the
//!   actual length and decremented otherwise;
//! * at confidence 0 (or on a table miss) the predictor falls back to a
//!   "global" prediction: the mean run length of the last **three**
//!   completed invocations regardless of AState — "OS invocation lengths
//!   tend to be clustered and a global prediction can be better than a
//!   low-confidence local prediction".

use crate::astate::AState;
use core::fmt;
use osoffload_sim::{Ratio, WindowedMean};

/// Relative error treated as a "close" prediction, for confidence updates
/// and accuracy accounting (±5%, §III-A).
pub const CLOSE_FRACTION: f64 = 0.05;

/// Where a prediction's value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictionSource {
    /// A confident per-AState table entry.
    Local,
    /// The global last-three-invocations mean (low confidence or miss).
    Global,
}

/// A run-length prediction, in instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted run length of the upcoming invocation.
    pub length: u64,
    /// Local table hit or global fallback.
    pub source: PredictionSource,
}

/// Accuracy accounting shared by both organisations.
///
/// Mirrors the paper's reporting: "this simple predictor is able to
/// precisely predict the run length of 73.6% of all privileged
/// instruction invocations, and predict within ±5% the actual run length
/// an additional 24.8% of the time."
#[derive(Debug, Clone, Default)]
pub struct PredictorStats {
    /// Predictions exactly equal to the actual run length.
    pub exact: Ratio,
    /// Predictions within ±5% (including exact).
    pub within_close: Ratio,
    /// Predictions that underestimated the actual length (the paper's
    /// dominant error mode, caused by interrupt extensions).
    pub underestimates: Ratio,
    /// Local-source predictions (vs global fallback).
    pub local_source: Ratio,
}

impl PredictorStats {
    fn record(&mut self, prediction: Prediction, actual: u64) {
        let exact = prediction.length == actual;
        self.exact.record(exact);
        self.within_close
            .record(is_close(prediction.length, actual));
        self.underestimates.record(prediction.length < actual);
        self.local_source
            .record(prediction.source == PredictionSource::Local);
    }
}

impl fmt::Display for PredictorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact={:.1}% close={:.1}% under={:.1}% local={:.1}%",
            self.exact.rate() * 100.0,
            self.within_close.rate() * 100.0,
            self.underestimates.rate() * 100.0,
            self.local_source.rate() * 100.0
        )
    }
}

/// Whether `predicted` is within ±[`CLOSE_FRACTION`] of `actual`.
///
/// Computed in pure integer arithmetic (`20·|Δ| ≤ actual`, rearranged to
/// the overflow-free `|Δ| ≤ actual/20`) so the hot `learn` path does no
/// float work; the tolerance floor of 1 for tiny lengths is preserved.
#[inline]
pub fn is_close(predicted: u64, actual: u64) -> bool {
    let diff = predicted.abs_diff(actual);
    diff <= 1 || diff <= actual / 20
}

/// Run lengths are stored in 16 bits (saturating), which is what keeps
/// the 200-entry CAM at ~2 KB.
const LEN_BITS: u32 = 16;
const LEN_MAX: u64 = (1 << LEN_BITS) - 1;

#[derive(Debug, Clone, Copy)]
struct Entry {
    astate: AState,
    last_len: u16,
    confidence: u8, // 2-bit saturating: 0..=3
    last_use: u64,
    valid: bool,
}

impl Entry {
    fn invalid() -> Entry {
        Entry {
            astate: AState::default(),
            last_len: 0,
            confidence: 0,
            last_use: 0,
            valid: false,
        }
    }
}

/// Interface shared by the two predictor organisations.
///
/// The canonical flow is:
///
/// 1. at a user→privileged transition, call [`predict`](Self::predict);
/// 2. decide off-loading by comparing the prediction to the threshold;
/// 3. when the invocation retires, call [`learn`](Self::learn) with the
///    prediction from step 1 and the observed length.
pub trait RunLengthPredictor {
    /// Predicts the run length of an invocation entering with `astate`.
    fn predict(&mut self, astate: AState) -> Prediction;

    /// Trains the predictor with the completed invocation's `actual`
    /// length, given the `prediction` issued at entry.
    fn learn(&mut self, astate: AState, prediction: Prediction, actual: u64);

    /// Accuracy statistics accumulated by `learn`.
    fn stats(&self) -> &PredictorStats;

    /// Zeroes the accuracy statistics without untraining the table (used
    /// when discarding warm-up measurements).
    fn reset_stats(&mut self);

    /// Hardware storage cost of this organisation in bytes.
    fn storage_bytes(&self) -> usize;

    /// Human-readable organisation name.
    fn organization(&self) -> &'static str;
}

fn clamp_len(actual: u64) -> u16 {
    actual.min(LEN_MAX) as u16
}

/// FNV-1a-style fold of one word into a running state hash.
#[inline]
fn fp_fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Order-sensitive digest of a CAM organisation's observable state: the
/// raw entry array (tags, lengths, confidences, LRU stamps, validity),
/// the LRU clock, and the global fallback window. The indexed
/// [`CamPredictor`] and the linear-scan [`ReferenceCamPredictor`] are
/// behaviourally identical by construction, so after identical
/// `predict`/`learn` sequences their fingerprints must match — the
/// fuzzer's predictor-differential oracle checks exactly that.
fn fingerprint_state(entries: &[Entry], clock: u64, global: &WindowedMean) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    h = fp_fold(h, entries.len() as u64);
    for e in entries {
        h = fp_fold(h, e.astate.as_u64());
        h = fp_fold(h, e.last_len as u64);
        h = fp_fold(h, e.confidence as u64);
        h = fp_fold(h, e.last_use);
        h = fp_fold(h, e.valid as u64);
    }
    h = fp_fold(h, clock);
    h = fp_fold(h, global.mean().to_bits());
    h
}

/// Size of the hash index fronting the CAM scan (power of two).
const CAM_INDEX_SIZE: usize = 64;
/// Sentinel for an empty index slot.
const CAM_INDEX_NONE: u32 = u32::MAX;

/// Fibonacci hash of an AState tag into the front-end index.
#[inline]
fn cam_index_hash(astate: AState) -> usize {
    (astate.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (CAM_INDEX_SIZE - 1)
}

/// The paper's primary organisation: a fully-associative 200-entry CAM.
///
/// A 64-entry hash index over the AState tags fronts the associative
/// array: a lookup probes one indexed slot first and only falls back to
/// the linear scan when the probe misses or is stale. The index is a pure
/// cache of scan results — slots are verified by tag before use — so the
/// structure's observable behaviour (predictions, confidence updates,
/// LRU victim order) is exactly that of the plain scan, which
/// [`ReferenceCamPredictor`] retains for differential testing.
///
/// # Examples
///
/// ```
/// use osoffload_core::{AState, CamPredictor, RunLengthPredictor};
///
/// let mut p = CamPredictor::paper_default();
/// let a = AState::from(0x1234u64);
/// // Teach it: two same-length invocations at the same AState.
/// let pr = p.predict(a);
/// p.learn(a, pr, 2000);
/// let pr = p.predict(a);
/// p.learn(a, pr, 2000);
/// assert_eq!(p.predict(a).length, 2000);
/// ```
#[derive(Debug, Clone)]
pub struct CamPredictor {
    entries: Vec<Entry>,
    /// Hash index over AState tags: `index[h]` caches the slot the last
    /// scan found (or installed) for a tag hashing to `h`. Stale slots
    /// are detected by tag comparison and repaired on the next lookup.
    index: [u32; CAM_INDEX_SIZE],
    /// Valid entries occupy the prefix `0..valid_count` (entries are
    /// allocated front-to-back and never invalidated).
    valid_count: usize,
    clock: u64,
    global: WindowedMean,
    stats: PredictorStats,
}

impl CamPredictor {
    /// Creates a CAM with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CamPredictor: capacity must be positive");
        CamPredictor {
            entries: vec![Entry::invalid(); capacity],
            index: [CAM_INDEX_NONE; CAM_INDEX_SIZE],
            valid_count: 0,
            clock: 0,
            global: WindowedMean::new(3),
            stats: PredictorStats::default(),
        }
    }

    /// The paper's 200-entry, ~2 KB configuration, which "yields close to
    /// optimal (infinite history) performance".
    pub fn paper_default() -> Self {
        CamPredictor::new(200)
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of valid entries currently held.
    pub fn resident(&self) -> usize {
        self.valid_count
    }

    fn global_prediction(&self) -> Prediction {
        Prediction {
            length: self.global.mean().round() as u64,
            source: PredictionSource::Global,
        }
    }

    /// Locates `astate`'s slot: indexed probe first, exact scan over the
    /// valid prefix on a stale or missing index entry. Valid entries hold
    /// mutually distinct AStates (allocation happens only after a failed
    /// lookup), so a verified probe returns the same slot the scan would.
    fn find(&mut self, astate: AState) -> Option<usize> {
        let h = cam_index_hash(astate);
        let cached = self.index[h];
        if cached != CAM_INDEX_NONE {
            let e = &self.entries[cached as usize];
            if e.valid && e.astate == astate {
                return Some(cached as usize);
            }
        }
        let found = self.entries[..self.valid_count]
            .iter()
            .position(|e| e.astate == astate);
        if let Some(i) = found {
            self.index[h] = i as u32;
        }
        found
    }

    /// Digest of the observable table state (entries, LRU clock, global
    /// window). Matches [`ReferenceCamPredictor::fingerprint`] exactly
    /// when the two organisations have processed identical
    /// `predict`/`learn` sequences; the front-end hash index is a pure
    /// cache and deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_state(&self.entries, self.clock, &self.global)
    }

    /// Read-only view used by the differential tests: the raw entry
    /// array, which fixes the LRU victim order.
    #[cfg(test)]
    pub(crate) fn entries_snapshot(&self) -> Vec<(u64, u16, u8, u64, bool)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.astate.as_u64(),
                    e.last_len,
                    e.confidence,
                    e.last_use,
                    e.valid,
                )
            })
            .collect()
    }
}

impl RunLengthPredictor for CamPredictor {
    fn predict(&mut self, astate: AState) -> Prediction {
        self.clock += 1;
        match self.find(astate) {
            Some(i) => {
                self.entries[i].last_use = self.clock;
                if self.entries[i].confidence == 0 {
                    // Low confidence: trust the global estimate instead.
                    self.global_prediction()
                } else {
                    Prediction {
                        length: self.entries[i].last_len as u64,
                        source: PredictionSource::Local,
                    }
                }
            }
            None => self.global_prediction(),
        }
    }

    fn learn(&mut self, astate: AState, prediction: Prediction, actual: u64) {
        self.stats.record(prediction, actual);
        self.clock += 1;
        let close = is_close(prediction.length, actual);
        match self.find(astate) {
            Some(i) => {
                let e = &mut self.entries[i];
                if close {
                    if e.confidence < 3 {
                        e.confidence += 1;
                    }
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                }
                e.last_len = clamp_len(actual);
                e.last_use = self.clock;
            }
            None => {
                // Allocate, evicting the LRU entry if necessary. Valid
                // entries form a prefix, so the first free slot is just
                // `valid_count`.
                let slot = if self.valid_count < self.entries.len() {
                    let s = self.valid_count;
                    self.valid_count += 1;
                    s
                } else {
                    self.entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_use)
                        .map(|(i, _)| i)
                        .expect("capacity > 0")
                };
                self.entries[slot] = Entry {
                    astate,
                    last_len: clamp_len(actual),
                    confidence: 1,
                    last_use: self.clock,
                    valid: true,
                };
                self.index[cam_index_hash(astate)] = slot as u32;
            }
        }
        self.global.record(actual as f64);
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    fn storage_bytes(&self) -> usize {
        // Per entry: 64-bit AState tag + 16-bit length + 2-bit confidence.
        (self.entries.len() * (64 + LEN_BITS as usize + 2)).div_ceil(8)
    }

    fn organization(&self) -> &'static str {
        "fully-associative CAM"
    }
}

/// The pre-index CAM implementation: a plain linear scan over all
/// entries. Retained verbatim as the behavioural reference the indexed
/// [`CamPredictor`] is differentially tested against (see the predictor
/// property tests); not used on any hot path.
#[derive(Debug, Clone)]
pub struct ReferenceCamPredictor {
    entries: Vec<Entry>,
    clock: u64,
    global: WindowedMean,
    stats: PredictorStats,
}

impl ReferenceCamPredictor {
    /// Creates a reference CAM with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "ReferenceCamPredictor: capacity must be positive"
        );
        ReferenceCamPredictor {
            entries: vec![Entry::invalid(); capacity],
            clock: 0,
            global: WindowedMean::new(3),
            stats: PredictorStats::default(),
        }
    }

    /// The paper's 200-entry configuration.
    pub fn paper_default() -> Self {
        ReferenceCamPredictor::new(200)
    }

    /// Number of valid entries currently held (full scan).
    pub fn resident(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    fn global_prediction(&self) -> Prediction {
        Prediction {
            length: self.global.mean().round() as u64,
            source: PredictionSource::Global,
        }
    }

    fn find(&self, astate: AState) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.valid && e.astate == astate)
    }

    /// Digest of the observable table state; see
    /// [`CamPredictor::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        fingerprint_state(&self.entries, self.clock, &self.global)
    }

    /// Read-only view used by the differential tests.
    #[cfg(test)]
    pub(crate) fn entries_snapshot(&self) -> Vec<(u64, u16, u8, u64, bool)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.astate.as_u64(),
                    e.last_len,
                    e.confidence,
                    e.last_use,
                    e.valid,
                )
            })
            .collect()
    }
}

impl RunLengthPredictor for ReferenceCamPredictor {
    fn predict(&mut self, astate: AState) -> Prediction {
        self.clock += 1;
        match self.find(astate) {
            Some(i) => {
                self.entries[i].last_use = self.clock;
                if self.entries[i].confidence == 0 {
                    self.global_prediction()
                } else {
                    Prediction {
                        length: self.entries[i].last_len as u64,
                        source: PredictionSource::Local,
                    }
                }
            }
            None => self.global_prediction(),
        }
    }

    fn learn(&mut self, astate: AState, prediction: Prediction, actual: u64) {
        self.stats.record(prediction, actual);
        self.clock += 1;
        let close = is_close(prediction.length, actual);
        match self.find(astate) {
            Some(i) => {
                let e = &mut self.entries[i];
                if close {
                    if e.confidence < 3 {
                        e.confidence += 1;
                    }
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                }
                e.last_len = clamp_len(actual);
                e.last_use = self.clock;
            }
            None => {
                let slot = self
                    .entries
                    .iter()
                    .position(|e| !e.valid)
                    .unwrap_or_else(|| {
                        self.entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.last_use)
                            .map(|(i, _)| i)
                            .expect("capacity > 0")
                    });
                self.entries[slot] = Entry {
                    astate,
                    last_len: clamp_len(actual),
                    confidence: 1,
                    last_use: self.clock,
                    valid: true,
                };
            }
        }
        self.global.record(actual as f64);
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    fn storage_bytes(&self) -> usize {
        (self.entries.len() * (64 + LEN_BITS as usize + 2)).div_ceil(8)
    }

    fn organization(&self) -> &'static str {
        "fully-associative CAM (reference scan)"
    }
}

impl fmt::Display for CamPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry CAM ({} B): {}",
            self.entries.len(),
            self.storage_bytes(),
            self.stats
        )
    }
}

/// The paper's alternative organisation: a tag-less direct-mapped RAM
/// ("A direct-mapped RAM structure with 1500 entries also provides
/// similar accuracy and has a storage requirement of 3.3 KB", §III-A).
///
/// Being tag-less, distinct AStates that alias to the same index simply
/// share (and fight over) an entry — cheaper hardware bought with
/// destructive aliasing, exactly the trade the paper describes.
#[derive(Debug, Clone)]
pub struct DirectMappedPredictor {
    lens: Vec<u16>,
    confidence: Vec<u8>,
    valid: Vec<bool>,
    global: WindowedMean,
    stats: PredictorStats,
}

impl DirectMappedPredictor {
    /// Creates a direct-mapped table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0,
            "DirectMappedPredictor: entries must be positive"
        );
        DirectMappedPredictor {
            lens: vec![0; entries],
            confidence: vec![0; entries],
            valid: vec![false; entries],
            global: WindowedMean::new(3),
            stats: PredictorStats::default(),
        }
    }

    /// The paper's 1,500-entry, ~3.3 KB configuration.
    pub fn paper_default() -> Self {
        DirectMappedPredictor::new(1500)
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.lens.len()
    }

    fn global_prediction(&self) -> Prediction {
        Prediction {
            length: self.global.mean().round() as u64,
            source: PredictionSource::Global,
        }
    }
}

impl RunLengthPredictor for DirectMappedPredictor {
    fn predict(&mut self, astate: AState) -> Prediction {
        let i = astate.index_bits(self.lens.len());
        if self.valid[i] && self.confidence[i] > 0 {
            Prediction {
                length: self.lens[i] as u64,
                source: PredictionSource::Local,
            }
        } else {
            self.global_prediction()
        }
    }

    fn learn(&mut self, astate: AState, prediction: Prediction, actual: u64) {
        self.stats.record(prediction, actual);
        let i = astate.index_bits(self.lens.len());
        let close = is_close(prediction.length, actual);
        if self.valid[i] {
            if close {
                if self.confidence[i] < 3 {
                    self.confidence[i] += 1;
                }
            } else if self.confidence[i] > 0 {
                self.confidence[i] -= 1;
            }
        } else {
            self.valid[i] = true;
            self.confidence[i] = 1;
        }
        self.lens[i] = clamp_len(actual);
        self.global.record(actual as f64);
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    fn storage_bytes(&self) -> usize {
        // Tag-less: 16-bit length + 2-bit confidence per entry.
        (self.lens.len() * (LEN_BITS as usize + 2)).div_ceil(8)
    }

    fn organization(&self) -> &'static str {
        "tag-less direct-mapped RAM"
    }
}

impl fmt::Display for DirectMappedPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry direct-mapped ({} B): {}",
            self.lens.len(),
            self.storage_bytes(),
            self.stats
        )
    }
}

/// Tracks *binary* decision accuracy — whether `(predicted > N)` agrees
/// with `(actual > N)` — across a grid of thresholds. Regenerates the
/// paper's Figure 3.
///
/// # Examples
///
/// ```
/// use osoffload_core::BinaryAccuracyTracker;
///
/// let mut t = BinaryAccuracyTracker::new(&[100, 500, 1000]);
/// t.record(80, 90);      // both sides of every threshold agree
/// t.record(600, 400);    // disagrees at N = 500
/// assert_eq!(t.accuracy(100), 1.0);
/// assert_eq!(t.accuracy(500), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryAccuracyTracker {
    thresholds: Vec<u64>,
    ratios: Vec<Ratio>,
}

impl BinaryAccuracyTracker {
    /// Creates a tracker for the given thresholds.
    pub fn new(thresholds: &[u64]) -> Self {
        BinaryAccuracyTracker {
            thresholds: thresholds.to_vec(),
            ratios: vec![Ratio::new(); thresholds.len()],
        }
    }

    /// The paper's Figure 3 grid.
    pub fn paper_grid() -> Self {
        BinaryAccuracyTracker::new(&[100, 500, 1_000, 5_000, 10_000])
    }

    /// Records one (prediction, actual) pair.
    pub fn record(&mut self, predicted: u64, actual: u64) {
        for (n, r) in self.thresholds.iter().zip(self.ratios.iter_mut()) {
            r.record((predicted > *n) == (actual > *n));
        }
    }

    /// Binary accuracy at threshold `n` (must be one of the configured
    /// thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `n` was not configured.
    pub fn accuracy(&self, n: u64) -> f64 {
        let i = self
            .thresholds
            .iter()
            .position(|&t| t == n)
            .expect("threshold not tracked");
        self.ratios[i].rate()
    }

    /// Iterates `(threshold, accuracy)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.thresholds
            .iter()
            .zip(self.ratios.iter())
            .map(|(&t, r)| (t, r.rate()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_match_across_organisations() {
        let mut cam = CamPredictor::new(8);
        let mut reference = ReferenceCamPredictor::new(8);
        assert_eq!(cam.fingerprint(), reference.fingerprint(), "cold tables");
        // Deterministic pseudo-random drive: enough distinct AStates to
        // force evictions in an 8-entry table.
        let mut x = 0x9E37_79B9u64;
        for step in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = AState::from(x >> 56); // 256 possible tags
            let actual = (x >> 32) & 0xFFF;
            let pc = cam.predict(a);
            let pr = reference.predict(a);
            assert_eq!(pc, pr, "step {step}");
            cam.learn(a, pc, actual);
            reference.learn(a, pr, actual);
            assert_eq!(cam.fingerprint(), reference.fingerprint(), "step {step}");
        }
    }

    #[test]
    fn fingerprint_tracks_observable_state() {
        let mut p = CamPredictor::new(4);
        let cold = p.fingerprint();
        let a = AState::from(7u64);
        let pr = p.predict(a);
        assert_ne!(p.fingerprint(), cold, "predict advances the LRU clock");
        let before_learn = p.fingerprint();
        p.learn(a, pr, 321);
        assert_ne!(p.fingerprint(), before_learn, "learn installs an entry");
        // Stats are not part of the fingerprint.
        let trained = p.fingerprint();
        p.reset_stats();
        assert_eq!(p.fingerprint(), trained);
    }

    fn a(v: u64) -> AState {
        AState::from(v)
    }

    fn teach<P: RunLengthPredictor>(p: &mut P, astate: AState, len: u64, times: usize) {
        for _ in 0..times {
            let pr = p.predict(astate);
            p.learn(astate, pr, len);
        }
    }

    #[test]
    fn cam_learns_per_astate_lengths() {
        let mut p = CamPredictor::paper_default();
        teach(&mut p, a(1), 500, 3);
        teach(&mut p, a(2), 9_000, 3);
        assert_eq!(p.predict(a(1)).length, 500);
        assert_eq!(p.predict(a(2)).length, 9_000);
        assert_eq!(p.predict(a(1)).source, PredictionSource::Local);
    }

    #[test]
    fn cold_prediction_is_global() {
        let mut p = CamPredictor::paper_default();
        let pr = p.predict(a(42));
        assert_eq!(pr.source, PredictionSource::Global);
        assert_eq!(pr.length, 0, "empty global window predicts 0");
    }

    #[test]
    fn global_is_mean_of_last_three() {
        let mut p = CamPredictor::paper_default();
        teach(&mut p, a(1), 100, 1);
        teach(&mut p, a(2), 200, 1);
        teach(&mut p, a(3), 600, 1);
        teach(&mut p, a(4), 700, 1); // window now holds 200, 600, 700
        let pr = p.predict(a(99));
        assert_eq!(pr.source, PredictionSource::Global);
        assert_eq!(pr.length, 500);
    }

    #[test]
    fn confidence_gates_local_predictions() {
        let mut p = CamPredictor::paper_default();
        // First observation: entry allocated at confidence 1.
        teach(&mut p, a(7), 1_000, 1);
        assert_eq!(p.predict(a(7)).source, PredictionSource::Local);
        // A wildly different length knocks confidence back to 0...
        let pr = p.predict(a(7));
        p.learn(a(7), pr, 50_000);
        // ...so the next prediction falls back to global.
        assert_eq!(p.predict(a(7)).source, PredictionSource::Global);
        // Consistent observations refill the global window and then the
        // confidence counter, restoring local predictions.
        for _ in 0..3 {
            let pr = p.predict(a(7));
            p.learn(a(7), pr, 50_000);
        }
        let pr = p.predict(a(7));
        assert_eq!(pr.source, PredictionSource::Local);
        assert_eq!(pr.length, 50_000);
    }

    #[test]
    fn confidence_saturates_at_three() {
        let mut p = CamPredictor::new(4);
        teach(&mut p, a(1), 100, 10);
        // After saturation, three bad observations must empty confidence.
        for _ in 0..3 {
            let pr = p.predict(a(1));
            p.learn(a(1), pr, 100_000);
        }
        assert_eq!(p.predict(a(1)).source, PredictionSource::Global);
    }

    #[test]
    fn cam_capacity_bounded_with_lru_eviction() {
        let mut p = CamPredictor::new(8);
        for i in 0..100 {
            teach(&mut p, a(i), 100 + i, 1);
        }
        assert_eq!(p.resident(), 8);
        // Most recent AStates survive.
        assert_eq!(p.predict(a(99)).source, PredictionSource::Local);
        assert_eq!(p.predict(a(0)).source, PredictionSource::Global);
    }

    #[test]
    fn paper_storage_budgets() {
        let cam = CamPredictor::paper_default();
        let bytes = cam.storage_bytes();
        assert!(
            (1_900..=2_200).contains(&bytes),
            "CAM storage = {bytes} B, paper says ~2 KB"
        );
        let dm = DirectMappedPredictor::paper_default();
        let bytes = dm.storage_bytes();
        assert!(
            (3_200..=3_500).contains(&bytes),
            "DM storage = {bytes} B, paper says ~3.3 KB"
        );
    }

    #[test]
    fn lengths_saturate_at_16_bits() {
        let mut p = CamPredictor::new(4);
        // One observation allocates the entry at confidence 1 with the
        // stored length clamped to the 16-bit field.
        teach(&mut p, a(1), 1_000_000, 1);
        let pr = p.predict(a(1));
        assert_eq!(pr.source, PredictionSource::Local);
        assert_eq!(pr.length, 65_535);
    }

    #[test]
    fn direct_mapped_learns_and_aliases() {
        let mut p = DirectMappedPredictor::new(16);
        teach(&mut p, a(3), 700, 3);
        assert_eq!(p.predict(a(3)).length, 700);
        // a(3 + 16) aliases to the same slot: tag-less sharing.
        let aliased = p.predict(a(3 + 16));
        assert_eq!(aliased.length, 700);
        assert_eq!(aliased.source, PredictionSource::Local);
    }

    #[test]
    fn stats_track_exact_and_close() {
        let mut p = CamPredictor::paper_default();
        teach(&mut p, a(1), 1_000, 1); // cold: global 0 vs 1000 = miss
        teach(&mut p, a(1), 1_000, 3); // exact hits
        let s = p.stats();
        assert_eq!(s.exact.total(), 4);
        assert_eq!(s.exact.hits(), 3);
        assert!(s.within_close.rate() >= s.exact.rate());
    }

    #[test]
    fn underestimates_recorded() {
        let mut p = CamPredictor::paper_default();
        teach(&mut p, a(1), 1_000, 2);
        // Interrupt-extended invocation: actual exceeds prediction.
        let pr = p.predict(a(1));
        p.learn(a(1), pr, 5_000);
        assert!(p.stats().underestimates.hits() >= 1);
    }

    #[test]
    fn is_close_boundaries() {
        assert!(is_close(100, 100));
        assert!(is_close(95, 100));
        assert!(is_close(105, 100));
        assert!(!is_close(94, 100));
        assert!(!is_close(106, 100));
        // Tolerance floor of 1 for tiny lengths.
        assert!(is_close(21, 22));
        assert!(!is_close(19, 22));
    }

    #[test]
    fn binary_tracker_paper_grid() {
        let mut t = BinaryAccuracyTracker::paper_grid();
        t.record(600, 550);
        t.record(90, 12_000);
        let at_100: Vec<(u64, f64)> = t.iter().collect();
        assert_eq!(at_100.len(), 5);
        assert!((t.accuracy(100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!CamPredictor::paper_default().to_string().is_empty());
        assert!(!DirectMappedPredictor::paper_default()
            .to_string()
            .is_empty());
        assert!(!PredictorStats::default().to_string().is_empty());
    }
}
