//! Dynamic estimation of the off-load threshold `N` (§III-B).
//!
//! "If the hardware system must select one of a few possible N thresholds
//! at run-time, it is easiest to sample behavior with each of these
//! configurations at the start of every program phase and employ the
//! optimal configuration until the next program phase change is
//! detected." The concrete algorithm reproduced here:
//!
//! * feedback metric: mean L2 hit rate of the user and OS cores;
//! * initial threshold: `N = 1,000` if the application executes more than
//!   10% of its instructions in privileged mode, else `N = 10,000`;
//! * sampling epochs of 25 M instructions try the current `N` and its two
//!   neighbours on the candidate grid; a neighbour must beat the current
//!   threshold's hit rate by ≥ 1% (absolute) to be adopted;
//! * between samplings the chosen `N` runs for 100 M instructions,
//!   *doubling* each time it is re-confirmed optimal and resetting to
//!   100 M when it is not.
//!
//! The tuner is a pure state machine: the system feeds it one call per
//! epoch boundary with that epoch's measured hit rate, and it answers
//! with the threshold and epoch length to use next.

use osoffload_sim::Instret;

/// Configuration of the estimator.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Candidate thresholds, ascending ("very coarse-grained values of N,
    /// as later reported in Figure 4").
    pub candidates: Vec<u64>,
    /// Sampling epoch length (paper: 25 M instructions).
    pub sample_epoch: Instret,
    /// Base stable-run length (paper: 100 M instructions).
    pub stable_base: Instret,
    /// Maximum stable-run length the doubling may reach.
    pub stable_cap: Instret,
    /// Required absolute hit-rate improvement to adopt a neighbour
    /// (paper: 1%).
    pub improvement: f64,
    /// Privileged-instruction fraction above which the OS-heavy initial
    /// threshold is chosen (paper: 10%).
    pub os_heavy_pivot: f64,
    /// Initial threshold for OS-heavy applications (paper: 1,000).
    pub initial_os_heavy: u64,
    /// Initial threshold for OS-light applications (paper: 10,000).
    pub initial_os_light: u64,
}

impl TunerConfig {
    /// The paper's §III-B parameters over the Figure 4 threshold grid.
    pub fn paper_default() -> Self {
        TunerConfig {
            candidates: vec![0, 100, 500, 1_000, 5_000, 10_000],
            sample_epoch: Instret::new(25_000_000),
            stable_base: Instret::new(100_000_000),
            stable_cap: Instret::new(1_600_000_000),
            improvement: 0.01,
            os_heavy_pivot: 0.10,
            initial_os_heavy: 1_000,
            initial_os_light: 10_000,
        }
    }

    /// The same algorithm with lengths scaled down by `factor`, for
    /// simulations shorter than the paper's full runs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled_down(factor: u64) -> Self {
        assert!(factor > 0, "TunerConfig: scale factor must be positive");
        let p = Self::paper_default();
        TunerConfig {
            sample_epoch: Instret::new((p.sample_epoch.as_u64() / factor).max(1)),
            stable_base: Instret::new((p.stable_base.as_u64() / factor).max(1)),
            stable_cap: Instret::new((p.stable_cap.as_u64() / factor).max(1)),
            ..p
        }
    }
}

/// What the tuner wants the system to do for the next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerDirective {
    /// Threshold `N` to run with.
    pub threshold: u64,
    /// Length of the next epoch.
    pub epoch_len: Instret,
}

/// One entry of the tuner's decision log (for the `tuner_trace`
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerEvent {
    /// Epoch index at which the event occurred.
    pub epoch: u64,
    /// Threshold that was measured.
    pub threshold: u64,
    /// Measured mean L2 hit rate.
    pub l2_hit_rate: f64,
    /// Whether this measurement caused the stable threshold to change.
    pub adopted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initial measurement of the starting threshold.
    SampleCurrent,
    /// Measuring the lower neighbour.
    SampleLow,
    /// Measuring the upper neighbour.
    SampleHigh,
    /// Running with the chosen threshold.
    Stable,
}

/// The §III-B epoch-based threshold estimator.
///
/// # Examples
///
/// ```
/// use osoffload_core::{ThresholdTuner, TunerConfig};
///
/// let mut tuner = ThresholdTuner::new(TunerConfig::paper_default());
/// // An OS-heavy application starts at N = 1,000.
/// let d = tuner.initialize(0.35);
/// assert_eq!(d.threshold, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdTuner {
    cfg: TunerConfig,
    phase: Phase,
    current: usize,
    rate_current: f64,
    rate_low: Option<f64>,
    rate_high: Option<f64>,
    stable_len: Instret,
    first_eval: bool,
    epoch_counter: u64,
    history: Vec<TunerEvent>,
}

impl ThresholdTuner {
    /// Creates a tuner; call [`initialize`](Self::initialize) before
    /// feeding epochs.
    ///
    /// # Panics
    ///
    /// Panics if the candidate grid is empty or not strictly ascending.
    pub fn new(cfg: TunerConfig) -> Self {
        assert!(
            !cfg.candidates.is_empty(),
            "ThresholdTuner: empty candidate grid"
        );
        assert!(
            cfg.candidates.windows(2).all(|w| w[0] < w[1]),
            "ThresholdTuner: candidates must be strictly ascending"
        );
        let stable_len = cfg.stable_base;
        ThresholdTuner {
            cfg,
            phase: Phase::SampleCurrent,
            current: 0,
            rate_current: 0.0,
            rate_low: None,
            rate_high: None,
            stable_len,
            first_eval: true,
            epoch_counter: 0,
            history: Vec::new(),
        }
    }

    /// Picks the initial threshold from the observed privileged-mode
    /// instruction fraction and returns the first directive (paper: 25 M
    /// sampling epoch at `N = 1,000` or `N = 10,000`).
    pub fn initialize(&mut self, priv_fraction: f64) -> TunerDirective {
        let initial = if priv_fraction > self.cfg.os_heavy_pivot {
            self.cfg.initial_os_heavy
        } else {
            self.cfg.initial_os_light
        };
        self.current = self.nearest_candidate(initial);
        self.phase = Phase::SampleCurrent;
        TunerDirective {
            threshold: self.cfg.candidates[self.current],
            epoch_len: self.cfg.sample_epoch,
        }
    }

    fn nearest_candidate(&self, n: u64) -> usize {
        self.cfg
            .candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c.abs_diff(n))
            .map(|(i, _)| i)
            .expect("non-empty grid")
    }

    /// Current stable threshold.
    pub fn threshold(&self) -> u64 {
        self.cfg.candidates[self.current]
    }

    /// Decision log.
    pub fn history(&self) -> &[TunerEvent] {
        &self.history
    }

    fn log(&mut self, threshold: u64, rate: f64, adopted: bool) {
        self.history.push(TunerEvent {
            epoch: self.epoch_counter,
            threshold,
            l2_hit_rate: rate,
            adopted,
        });
    }

    /// Feeds the measured mean L2 hit rate of the epoch that just ended;
    /// returns the directive for the next epoch.
    pub fn on_epoch_end(&mut self, l2_hit_rate: f64) -> TunerDirective {
        self.epoch_counter += 1;
        match self.phase {
            Phase::SampleCurrent => {
                self.rate_current = l2_hit_rate;
                self.log(self.threshold(), l2_hit_rate, false);
                self.begin_neighbour_sampling()
            }
            Phase::Stable => {
                // The stable run itself measured the current threshold.
                self.rate_current = l2_hit_rate;
                self.log(self.threshold(), l2_hit_rate, false);
                self.begin_neighbour_sampling()
            }
            Phase::SampleLow => {
                self.rate_low = Some(l2_hit_rate);
                self.log(self.cfg.candidates[self.current - 1], l2_hit_rate, false);
                if self.current + 1 < self.cfg.candidates.len() {
                    self.phase = Phase::SampleHigh;
                    TunerDirective {
                        threshold: self.cfg.candidates[self.current + 1],
                        epoch_len: self.cfg.sample_epoch,
                    }
                } else {
                    self.evaluate()
                }
            }
            Phase::SampleHigh => {
                self.rate_high = Some(l2_hit_rate);
                self.log(self.cfg.candidates[self.current + 1], l2_hit_rate, false);
                self.evaluate()
            }
        }
    }

    fn begin_neighbour_sampling(&mut self) -> TunerDirective {
        self.rate_low = None;
        self.rate_high = None;
        if self.current > 0 {
            self.phase = Phase::SampleLow;
            TunerDirective {
                threshold: self.cfg.candidates[self.current - 1],
                epoch_len: self.cfg.sample_epoch,
            }
        } else if self.current + 1 < self.cfg.candidates.len() {
            self.phase = Phase::SampleHigh;
            TunerDirective {
                threshold: self.cfg.candidates[self.current + 1],
                epoch_len: self.cfg.sample_epoch,
            }
        } else {
            // Degenerate single-candidate grid: stay stable forever.
            self.enter_stable(false)
        }
    }

    fn evaluate(&mut self) -> TunerDirective {
        let mut best_idx = self.current;
        let mut best_rate = self.rate_current + self.cfg.improvement;
        if let Some(r) = self.rate_low {
            if r >= best_rate {
                best_rate = r;
                best_idx = self.current - 1;
            }
        }
        if let Some(r) = self.rate_high {
            if r >= best_rate {
                best_idx = self.current + 1;
            }
        }
        let changed = best_idx != self.current;
        if changed {
            self.current = best_idx;
            if let Some(last) = self.history.last_mut() {
                // Mark the adopting measurement in the log.
                if last.threshold == self.cfg.candidates[best_idx] {
                    last.adopted = true;
                }
            }
            // Also patch the low-sample entry if that one won.
            if let Some(e) = self
                .history
                .iter_mut()
                .rev()
                .find(|e| e.threshold == self.cfg.candidates[best_idx])
            {
                e.adopted = true;
            }
        }
        self.enter_stable(changed)
    }

    fn enter_stable(&mut self, changed: bool) -> TunerDirective {
        // A change (or the very first evaluation) starts at the base
        // stable length; repeated confirmations double it (§III-B).
        if changed || self.first_eval {
            self.stable_len = self.cfg.stable_base;
        } else {
            self.stable_len =
                Instret::new((self.stable_len.as_u64() * 2).min(self.cfg.stable_cap.as_u64()));
        }
        self.first_eval = false;
        self.phase = Phase::Stable;
        TunerDirective {
            threshold: self.threshold(),
            epoch_len: self.stable_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TunerConfig {
        TunerConfig {
            candidates: vec![0, 100, 500, 1_000, 5_000, 10_000],
            sample_epoch: Instret::new(1_000),
            stable_base: Instret::new(4_000),
            stable_cap: Instret::new(16_000),
            improvement: 0.01,
            os_heavy_pivot: 0.10,
            initial_os_heavy: 1_000,
            initial_os_light: 10_000,
        }
    }

    #[test]
    fn initial_threshold_depends_on_os_share() {
        let mut t = ThresholdTuner::new(cfg());
        assert_eq!(t.initialize(0.30).threshold, 1_000);
        let mut t = ThresholdTuner::new(cfg());
        assert_eq!(t.initialize(0.05).threshold, 10_000);
    }

    #[test]
    fn neighbour_sampling_walks_low_then_high() {
        let mut t = ThresholdTuner::new(cfg());
        t.initialize(0.30); // current = 1_000
        let low = t.on_epoch_end(0.80);
        assert_eq!(low.threshold, 500);
        assert_eq!(low.epoch_len, Instret::new(1_000));
        let high = t.on_epoch_end(0.80);
        assert_eq!(high.threshold, 5_000);
    }

    #[test]
    fn better_neighbour_is_adopted() {
        let mut t = ThresholdTuner::new(cfg());
        t.initialize(0.30);
        t.on_epoch_end(0.80); // current (1,000) measured
        t.on_epoch_end(0.85); // low (500) clearly better
        let stable = t.on_epoch_end(0.70); // high (5,000) worse
        assert_eq!(stable.threshold, 500);
        assert_eq!(t.threshold(), 500);
        assert!(t.history().iter().any(|e| e.adopted && e.threshold == 500));
    }

    #[test]
    fn one_percent_hysteresis_blocks_marginal_wins() {
        let mut t = ThresholdTuner::new(cfg());
        t.initialize(0.30);
        t.on_epoch_end(0.800);
        t.on_epoch_end(0.805); // only +0.5%: not enough
        let stable = t.on_epoch_end(0.801);
        assert_eq!(stable.threshold, 1_000, "current retained");
    }

    #[test]
    fn stable_length_doubles_while_optimal_and_resets_on_change() {
        let mut t = ThresholdTuner::new(cfg());
        t.initialize(0.30);
        // Round 1: current best -> stable at base length.
        t.on_epoch_end(0.8);
        t.on_epoch_end(0.5);
        let s1 = t.on_epoch_end(0.5);
        assert_eq!(s1.epoch_len, Instret::new(4_000));
        // Stable epoch ends; round 2 re-confirms -> doubled.
        t.on_epoch_end(0.8);
        t.on_epoch_end(0.5);
        let s2 = t.on_epoch_end(0.5);
        assert_eq!(s2.epoch_len, Instret::new(8_000));
        // Round 3: neighbour wins -> reset to base.
        t.on_epoch_end(0.8);
        t.on_epoch_end(0.95);
        let s3 = t.on_epoch_end(0.5);
        assert_eq!(s3.epoch_len, Instret::new(4_000));
        assert_eq!(s3.threshold, 500);
    }

    #[test]
    fn stable_length_caps() {
        let mut t = ThresholdTuner::new(cfg());
        t.initialize(0.30);
        // Keep re-confirming; length must not exceed the cap.
        let mut last = t.on_epoch_end(0.8);
        for _ in 0..20 {
            last = t.on_epoch_end(0.5);
        }
        assert!(last.epoch_len <= Instret::new(16_000));
    }

    #[test]
    fn grid_edges_sample_single_neighbour() {
        let mut t = ThresholdTuner::new(cfg());
        let d = t.initialize(0.05); // current = 10_000 (top of grid)
        assert_eq!(d.threshold, 10_000);
        let low = t.on_epoch_end(0.8);
        assert_eq!(low.threshold, 5_000);
        // No high neighbour: evaluation happens after the low sample.
        let stable = t.on_epoch_end(0.5);
        assert_eq!(stable.threshold, 10_000);

        // Bottom edge.
        let mut cfg2 = cfg();
        cfg2.initial_os_heavy = 0;
        let mut t = ThresholdTuner::new(cfg2);
        t.initialize(0.30);
        let high = t.on_epoch_end(0.8);
        assert_eq!(high.threshold, 100);
    }

    #[test]
    fn history_records_all_measurements() {
        let mut t = ThresholdTuner::new(cfg());
        t.initialize(0.30);
        t.on_epoch_end(0.8);
        t.on_epoch_end(0.7);
        t.on_epoch_end(0.6);
        assert_eq!(t.history().len(), 3);
        assert!(t.history().iter().all(|e| e.l2_hit_rate > 0.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_grid_rejected() {
        let mut c = cfg();
        c.candidates = vec![100, 50];
        ThresholdTuner::new(c);
    }

    #[test]
    fn scaled_down_preserves_grid() {
        let c = TunerConfig::scaled_down(1_000);
        assert_eq!(c.candidates, TunerConfig::paper_default().candidates);
        assert_eq!(c.sample_epoch, Instret::new(25_000));
    }
}
