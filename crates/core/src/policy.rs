//! Off-loading decision policies.
//!
//! The paper's Figure 5 compares three decision mechanisms layered over
//! the same migration machinery:
//!
//! * **SI** ([`StaticInstrumentation`]) — off-line profiling selects OS
//!   routines whose *mean* run length exceeds twice the migration
//!   latency; only those routines are instrumented, and instrumented
//!   routines always off-load (≈ Chakraborty et al. \[10\]);
//! * **DI** ([`DynamicInstrumentation`]) — *every* OS entry point carries
//!   software instrumentation that makes a run-time threshold decision;
//!   functionally equivalent to the hardware engine but paying tens to
//!   hundreds of cycles of instrumentation on every entry (≈ Mogul et
//!   al. \[17\] extended to all entry points);
//! * **HI** ([`HardwarePredictor`]) — the paper's hardware run-length
//!   predictor with a single-cycle decision.
//!
//! [`NeverOffload`] is the no-off-loading baseline; [`AlwaysOffload`] and
//! [`OraclePolicy`] exist for ablations.

use crate::astate::AState;
use crate::predictor::{Prediction, PredictionSource, RunLengthPredictor};
use core::fmt;
use std::collections::HashMap;

/// Identity of one privileged entry point as *software* sees it (the trap
/// number). Static instrumentation keys off this; the hardware predictor
/// never sees it, using [`AState`] instead.
pub type RoutineId = u64;

/// Context available at a user→privileged transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsEntry {
    /// The AState hash of the architected registers.
    pub astate: AState,
    /// The static identity of the entry point (software view).
    pub routine: RoutineId,
}

/// A policy's verdict for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Whether to migrate this invocation to the OS core.
    pub offload: bool,
    /// Decision-making overhead charged to the invoking thread, in
    /// cycles (instrumentation cost for software schemes, a single cycle
    /// for the hardware predictor).
    pub overhead_cycles: u64,
    /// The run-length prediction backing the decision, if the policy
    /// made one.
    pub prediction: Option<Prediction>,
}

impl Decision {
    /// A "run it locally, no overhead" decision.
    pub fn run_local() -> Self {
        Decision {
            offload: false,
            overhead_cycles: 0,
            prediction: None,
        }
    }
}

/// An off-loading decision policy.
///
/// The system calls [`decide`](Self::decide) at every user→privileged
/// transition and [`complete`](Self::complete) when the invocation
/// retires with its observed length.
pub trait OffloadPolicy {
    /// Policy name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Decides whether the invocation entering at `entry` is off-loaded.
    fn decide(&mut self, entry: OsEntry) -> Decision;

    /// Observes the completed invocation's actual length.
    fn complete(&mut self, entry: OsEntry, decision: &Decision, actual_len: u64);

    /// The current off-load threshold `N`, if the policy has one.
    fn threshold(&self) -> Option<u64> {
        None
    }

    /// Updates the threshold `N` (no-op for threshold-free policies);
    /// the dynamic tuner (§III-B) calls this at epoch boundaries.
    fn set_threshold(&mut self, _n: u64) {}

    /// Lets oracle-style policies peek at the invocation's actual length
    /// before [`decide`](Self::decide). Default: ignored.
    fn hint_actual(&mut self, _len: u64) {}

    /// A snapshot of the underlying predictor's accuracy statistics, for
    /// policies that have one (HI and DI).
    fn predictor_stats(&self) -> Option<crate::predictor::PredictorStats> {
        None
    }

    /// Zeroes accuracy statistics without untraining tables (used when
    /// discarding warm-up measurements). Default: no-op.
    fn reset_stats(&mut self) {}
}

/// Baseline: everything runs on the invoking core.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverOffload;

impl OffloadPolicy for NeverOffload {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn decide(&mut self, _entry: OsEntry) -> Decision {
        Decision::run_local()
    }

    fn complete(&mut self, _entry: OsEntry, _decision: &Decision, _actual_len: u64) {}
}

/// Ablation: every privileged invocation migrates (equivalent to `N = 0`
/// with a perfect predictor).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysOffload;

impl OffloadPolicy for AlwaysOffload {
    fn name(&self) -> &'static str {
        "always-offload"
    }

    fn decide(&mut self, _entry: OsEntry) -> Decision {
        Decision {
            offload: true,
            overhead_cycles: 0,
            prediction: None,
        }
    }

    fn complete(&mut self, _entry: OsEntry, _decision: &Decision, _actual_len: u64) {}

    fn threshold(&self) -> Option<u64> {
        Some(0)
    }
}

/// **HI** — the paper's hardware scheme: predictor lookup and threshold
/// comparison in a single cycle.
///
/// # Examples
///
/// ```
/// use osoffload_core::{AState, CamPredictor, HardwarePredictor, OffloadPolicy, OsEntry};
///
/// let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), 1_000);
/// let entry = OsEntry { astate: AState::from(9u64), routine: 0x109 };
/// // Train: this AState runs ~6,000 instructions.
/// for _ in 0..3 {
///     let d = hi.decide(entry);
///     hi.complete(entry, &d, 6_000);
/// }
/// assert!(hi.decide(entry).offload);
/// ```
#[derive(Debug, Clone)]
pub struct HardwarePredictor<P> {
    predictor: P,
    threshold: u64,
    decision_cost: u64,
}

impl<P: RunLengthPredictor> HardwarePredictor<P> {
    /// Creates the policy around a predictor organisation with threshold
    /// `n`. The decision itself costs a single cycle (§II: "hardware-based
    /// single-cycle decision making").
    pub fn new(predictor: P, n: u64) -> Self {
        HardwarePredictor {
            predictor,
            threshold: n,
            decision_cost: 1,
        }
    }

    /// The underlying predictor (for accuracy reporting).
    pub fn predictor(&self) -> &P {
        &self.predictor
    }
}

impl<P: RunLengthPredictor> OffloadPolicy for HardwarePredictor<P> {
    fn name(&self) -> &'static str {
        "HI"
    }

    fn decide(&mut self, entry: OsEntry) -> Decision {
        let prediction = self.predictor.predict(entry.astate);
        Decision {
            offload: prediction.length > self.threshold,
            overhead_cycles: self.decision_cost,
            prediction: Some(prediction),
        }
    }

    fn complete(&mut self, entry: OsEntry, decision: &Decision, actual_len: u64) {
        let prediction = decision.prediction.unwrap_or(Prediction {
            length: 0,
            source: PredictionSource::Global,
        });
        self.predictor.learn(entry.astate, prediction, actual_len);
    }

    fn threshold(&self) -> Option<u64> {
        Some(self.threshold)
    }

    fn set_threshold(&mut self, n: u64) {
        self.threshold = n;
    }

    fn predictor_stats(&self) -> Option<crate::predictor::PredictorStats> {
        Some(self.predictor.stats().clone())
    }

    fn reset_stats(&mut self) {
        self.predictor.reset_stats();
    }
}

/// **DI** — the same decision logic as [`HardwarePredictor`], implemented
/// in software: a run-length table maintained by instrumentation stubs on
/// *every* OS entry point. "DI is the functional equivalent of the
/// hardware prediction engine proposed in this paper, but implemented
/// entirely in software" (§V-B) — so it reuses the same predictor model,
/// but each entry pays `instrumentation_cost` cycles whether or not the
/// invocation is ultimately off-loaded (§II, Figure 1).
#[derive(Debug, Clone)]
pub struct DynamicInstrumentation<P> {
    predictor: P,
    threshold: u64,
    instrumentation_cost: u64,
}

impl<P: RunLengthPredictor> DynamicInstrumentation<P> {
    /// Creates the policy with threshold `n` and a per-entry software
    /// instrumentation cost in cycles.
    ///
    /// §II measures a trivial static check doubling `getpid` from 17 to
    /// 33 instructions, and notes that "examining multiple register
    /// values, or accessing internal data structures can easily bloat
    /// this overhead to hundreds of cycles". The DI scheme needs the
    /// table lookup and update, so costs of 50–200 cycles are realistic;
    /// [`paper_default_cost`](Self::paper_default_cost) uses 120.
    pub fn new(predictor: P, n: u64, instrumentation_cost: u64) -> Self {
        DynamicInstrumentation {
            predictor,
            threshold: n,
            instrumentation_cost,
        }
    }

    /// The default per-entry cost used in the Figure 5 reproduction.
    pub fn paper_default_cost() -> u64 {
        120
    }

    /// The underlying software table (for reporting).
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// The per-entry instrumentation cost in cycles.
    pub fn instrumentation_cost(&self) -> u64 {
        self.instrumentation_cost
    }
}

impl<P: RunLengthPredictor> OffloadPolicy for DynamicInstrumentation<P> {
    fn name(&self) -> &'static str {
        "DI"
    }

    fn decide(&mut self, entry: OsEntry) -> Decision {
        let prediction = self.predictor.predict(entry.astate);
        Decision {
            offload: prediction.length > self.threshold,
            overhead_cycles: self.instrumentation_cost,
            prediction: Some(prediction),
        }
    }

    fn complete(&mut self, entry: OsEntry, decision: &Decision, actual_len: u64) {
        let prediction = decision.prediction.unwrap_or(Prediction {
            length: 0,
            source: PredictionSource::Global,
        });
        self.predictor.learn(entry.astate, prediction, actual_len);
    }

    fn threshold(&self) -> Option<u64> {
        Some(self.threshold)
    }

    fn set_threshold(&mut self, n: u64) {
        self.threshold = n;
    }

    fn predictor_stats(&self) -> Option<crate::predictor::PredictorStats> {
        Some(self.predictor.stats().clone())
    }

    fn reset_stats(&mut self) {
        self.predictor.reset_stats();
    }
}

/// **SI** — static instrumentation from off-line profiling: only routines
/// whose profiled mean run length exceeds `2 ×` the migration latency are
/// instrumented, and instrumented routines always off-load. Uninstrumented
/// routines pay nothing and never off-load (≈ Chakraborty et al.).
#[derive(Debug, Clone)]
pub struct StaticInstrumentation {
    instrumented: HashMap<RoutineId, u64>,
    stub_cost: u64,
}

impl StaticInstrumentation {
    /// Builds the policy from an off-line profile (`routine → mean run
    /// length`) and the migration latency it was tuned for: routines
    /// whose mean run length exceeds **2× the migration latency** get
    /// instrumented (§V-B). Run lengths are in instructions and the
    /// latency in cycles; at the ~2-cycles-per-instruction the OS paths
    /// average, the cutoff works out to `migration_latency` instructions.
    ///
    /// `stub_cost` is the small fixed cost of the instrumented routine's
    /// redirect stub (it does no run-time analysis).
    pub fn from_profile(
        profile: &HashMap<RoutineId, f64>,
        migration_latency: u64,
        stub_cost: u64,
    ) -> Self {
        let cutoff = migration_latency as f64;
        let instrumented = profile
            .iter()
            .filter(|(_, &mean)| mean > cutoff)
            .map(|(&routine, &mean)| (routine, mean as u64))
            .collect();
        StaticInstrumentation {
            instrumented,
            stub_cost,
        }
    }

    /// The default stub cost used in the Figure 5 reproduction (the §II
    /// `getpid` experiment measured a 16-instruction stub; the off-load
    /// branch plus state setup lands around 25 cycles).
    pub fn paper_default_stub_cost() -> u64 {
        25
    }

    /// Number of routines the off-line profile selected.
    pub fn instrumented_count(&self) -> usize {
        self.instrumented.len()
    }

    /// Whether `routine` was selected for instrumentation.
    pub fn is_instrumented(&self, routine: RoutineId) -> bool {
        self.instrumented.contains_key(&routine)
    }
}

impl OffloadPolicy for StaticInstrumentation {
    fn name(&self) -> &'static str {
        "SI"
    }

    fn decide(&mut self, entry: OsEntry) -> Decision {
        if self.instrumented.contains_key(&entry.routine) {
            Decision {
                offload: true,
                overhead_cycles: self.stub_cost,
                prediction: None,
            }
        } else {
            Decision::run_local()
        }
    }

    fn complete(&mut self, _entry: OsEntry, _decision: &Decision, _actual_len: u64) {}
}

/// Oracle: off-loads exactly the invocations whose *actual* length
/// exceeds the threshold. An upper bound for decision quality (not in the
/// paper's figures, but the natural ablation for the predictor).
#[derive(Debug, Clone, Copy)]
pub struct OraclePolicy {
    threshold: u64,
    pending_actual: Option<u64>,
}

impl OraclePolicy {
    /// Creates an oracle with threshold `n`.
    pub fn new(n: u64) -> Self {
        OraclePolicy {
            threshold: n,
            pending_actual: None,
        }
    }
}

impl OffloadPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn decide(&mut self, _entry: OsEntry) -> Decision {
        let actual = self
            .pending_actual
            .take()
            .expect("OraclePolicy: hint_actual must precede decide");
        Decision {
            offload: actual > self.threshold,
            overhead_cycles: 0,
            prediction: None,
        }
    }

    fn complete(&mut self, _entry: OsEntry, _decision: &Decision, _actual_len: u64) {}

    fn threshold(&self) -> Option<u64> {
        Some(self.threshold)
    }

    fn set_threshold(&mut self, n: u64) {
        self.threshold = n;
    }

    fn hint_actual(&mut self, len: u64) {
        self.pending_actual = Some(len);
    }
}

impl fmt::Display for StaticInstrumentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SI ({} routines instrumented, {} cyc stub)",
            self.instrumented.len(),
            self.stub_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::CamPredictor;

    fn entry(v: u64) -> OsEntry {
        OsEntry {
            astate: AState::from(v),
            routine: v,
        }
    }

    fn train<P: OffloadPolicy>(p: &mut P, e: OsEntry, len: u64, times: usize) {
        for _ in 0..times {
            p.hint_actual(len);
            let d = p.decide(e);
            p.complete(e, &d, len);
        }
    }

    #[test]
    fn never_offload_is_free_and_local() {
        let mut p = NeverOffload;
        let d = p.decide(entry(1));
        assert!(!d.offload);
        assert_eq!(d.overhead_cycles, 0);
        assert_eq!(p.threshold(), None);
    }

    #[test]
    fn always_offload_offloads() {
        let mut p = AlwaysOffload;
        assert!(p.decide(entry(1)).offload);
        assert_eq!(p.threshold(), Some(0));
    }

    #[test]
    fn hi_offloads_long_keeps_short() {
        let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), 1_000);
        train(&mut hi, entry(1), 6_000, 3);
        train(&mut hi, entry(2), 150, 3);
        let long = hi.decide(entry(1));
        assert!(long.offload);
        assert_eq!(long.overhead_cycles, 1, "hardware decision is single-cycle");
        assert!(!hi.decide(entry(2)).offload);
    }

    #[test]
    fn hi_threshold_is_tunable() {
        let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), 1_000);
        train(&mut hi, entry(1), 5_000, 3);
        assert!(hi.decide(entry(1)).offload);
        hi.set_threshold(10_000);
        assert!(!hi.decide(entry(1)).offload);
        assert_eq!(hi.threshold(), Some(10_000));
    }

    #[test]
    fn di_matches_hi_decisions_but_costs_more() {
        let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), 1_000);
        let mut di = DynamicInstrumentation::new(
            CamPredictor::paper_default(),
            1_000,
            DynamicInstrumentation::<CamPredictor>::paper_default_cost(),
        );
        for (e, len) in [(entry(1), 4_000), (entry(2), 200), (entry(3), 1_500)] {
            train(&mut hi, e, len, 3);
            train(&mut di, e, len, 3);
        }
        for e in [entry(1), entry(2), entry(3)] {
            let dh = hi.decide(e);
            let dd = di.decide(e);
            assert_eq!(dh.offload, dd.offload, "functionally equivalent");
            assert!(dd.overhead_cycles > dh.overhead_cycles * 50);
        }
    }

    #[test]
    fn si_selects_by_profiled_mean() {
        let mut profile = HashMap::new();
        profile.insert(1u64, 15_000.0); // above the 5,000-insn cutoff
        profile.insert(2u64, 4_000.0); // below it
        let mut si = StaticInstrumentation::from_profile(&profile, 5_000, 25);
        assert_eq!(si.instrumented_count(), 1);
        assert!(si.is_instrumented(1));
        assert!(!si.is_instrumented(2));

        let d1 = si.decide(entry(1));
        assert!(d1.offload);
        assert_eq!(d1.overhead_cycles, 25);

        let d2 = si.decide(entry(2));
        assert!(!d2.offload);
        assert_eq!(d2.overhead_cycles, 0, "uninstrumented routines are free");
    }

    #[test]
    fn si_cutoff_scales_with_latency() {
        let mut profile = HashMap::new();
        profile.insert(1u64, 1_500.0);
        // At aggressive latency (100 cycles), 1,500 insn clears the bar.
        let si = StaticInstrumentation::from_profile(&profile, 100, 25);
        assert!(si.is_instrumented(1));
        // At conservative latency (5,000 cycles), it does not.
        let si = StaticInstrumentation::from_profile(&profile, 5_000, 25);
        assert!(!si.is_instrumented(1));
    }

    #[test]
    fn oracle_decides_on_actual_length() {
        let mut o = OraclePolicy::new(1_000);
        o.hint_actual(5_000);
        assert!(o.decide(entry(1)).offload);
        o.hint_actual(500);
        assert!(!o.decide(entry(1)).offload);
    }

    #[test]
    #[should_panic(expected = "hint_actual")]
    fn oracle_without_hint_panics() {
        OraclePolicy::new(1_000).decide(entry(1));
    }

    #[test]
    fn policy_names_match_figures() {
        assert_eq!(NeverOffload.name(), "baseline");
        assert_eq!(HardwarePredictor::new(CamPredictor::new(8), 0).name(), "HI");
        assert_eq!(
            DynamicInstrumentation::new(CamPredictor::new(8), 0, 1).name(),
            "DI"
        );
        assert_eq!(
            StaticInstrumentation::from_profile(&HashMap::new(), 100, 1).name(),
            "SI"
        );
    }

    #[test]
    fn display_is_nonempty() {
        let si = StaticInstrumentation::from_profile(&HashMap::new(), 100, 1);
        assert!(!si.to_string().is_empty());
    }
}
