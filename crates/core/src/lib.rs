//! The paper's contribution: hardware-assisted decision making for
//! selective off-loading of OS functionality.
//!
//! This crate implements §III of *"Improving Server Performance on
//! Multi-Cores via Selective Off-loading of OS Functionality"* (Nellans
//! et al., WIOSCA 2010):
//!
//! * [`astate`] — the 64-bit XOR hash of `PSTATE`/`%g0`/`%g1`/`%i0`/`%i1`
//!   sampled at every user→privileged transition;
//! * [`predictor`] — the OS run-length predictor in both hardware
//!   organisations (200-entry CAM ≈ 2 KB, 1,500-entry direct-mapped RAM
//!   ≈ 3.3 KB), with 2-bit confidence and the last-three-invocations
//!   global fallback;
//! * [`policy`] — the decision policies compared in Figure 5: baseline,
//!   static instrumentation (SI), dynamic instrumentation (DI), the
//!   hardware predictor (HI), plus always-off-load and oracle ablations;
//! * [`tuner`] — the §III-B epoch-based dynamic estimator of the
//!   threshold `N`, driven by mean L2 hit-rate feedback.
//!
//! # Examples
//!
//! ```
//! use osoffload_core::{AState, CamPredictor, RunLengthPredictor};
//! use osoffload_cpu::ArchState;
//!
//! let mut predictor = CamPredictor::paper_default();
//! let mut arch = ArchState::new();
//!
//! // A thread issues the same syscall twice; the second time the
//! // predictor knows its length.
//! arch.set_syscall_registers(0x103, 4, 8192);
//! arch.enter_privileged();
//! let astate = AState::from_arch(&arch);
//! let p = predictor.predict(astate);
//! predictor.learn(astate, p, 3_307);
//! arch.exit_privileged();
//!
//! arch.enter_privileged();
//! assert_eq!(predictor.predict(AState::from_arch(&arch)).length, 3_307);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod astate;
pub mod policy;
pub mod predictor;
pub mod setassoc;
pub mod tuner;

#[cfg(test)]
mod proptests;

pub use ablation::{GlobalOnlyPredictor, LastValuePredictor};
pub use astate::AState;
pub use policy::{
    AlwaysOffload, Decision, DynamicInstrumentation, HardwarePredictor, NeverOffload,
    OffloadPolicy, OraclePolicy, OsEntry, RoutineId, StaticInstrumentation,
};
pub use predictor::{
    BinaryAccuracyTracker, CamPredictor, DirectMappedPredictor, Prediction, PredictionSource,
    PredictorStats, ReferenceCamPredictor, RunLengthPredictor, CLOSE_FRACTION,
};
pub use setassoc::SetAssocPredictor;
pub use tuner::{ThresholdTuner, TunerConfig, TunerDirective, TunerEvent};
