//! The *AState* hash.
//!
//! "We propose a new hardware predictor of OS invocation length that XOR
//! hashes the values of various architected registers. After evaluating
//! many register combinations, the following registers were chosen for
//! the SPARC architecture: PSTATE …, g0 and g1 (global registers), and
//! i0 and i1 (input argument registers). The XOR of these registers
//! yields a 64-bit value (that we refer to as AState) that encodes
//! pertinent information about the type of OS invocation, input values,
//! and the execution environment." (§III-A)

use core::fmt;
use osoffload_cpu::ArchState;

/// The 64-bit XOR hash of `PSTATE`, `%g0`, `%g1`, `%i0`, `%i1` sampled at
/// a user→privileged transition.
///
/// # Examples
///
/// ```
/// use osoffload_core::AState;
/// use osoffload_cpu::ArchState;
///
/// let mut arch = ArchState::new();
/// arch.set_syscall_registers(0x103, 4, 8192);
/// arch.enter_privileged();
/// let a = AState::from_arch(&arch);
/// arch.exit_privileged();
///
/// // The same invocation context hashes identically next time.
/// arch.enter_privileged();
/// assert_eq!(AState::from_arch(&arch), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AState(u64);

impl AState {
    /// Hashes five raw register values (paper order: `PSTATE`, `%g0`,
    /// `%g1`, `%i0`, `%i1`).
    #[inline]
    pub fn from_registers(regs: [u64; 5]) -> Self {
        AState(regs[0] ^ regs[1] ^ regs[2] ^ regs[3] ^ regs[4])
    }

    /// Hashes the registers of an architected-state snapshot.
    #[inline]
    pub fn from_arch(arch: &ArchState) -> Self {
        Self::from_registers(arch.astate_inputs())
    }

    /// The raw 64-bit hash value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The low-order index bits used by the tag-less direct-mapped
    /// predictor organisation ("the least significant bits of the AState
    /// are used as the index", §III-A).
    #[inline]
    pub fn index_bits(self, table_size: usize) -> usize {
        debug_assert!(table_size > 0);
        (self.0 % table_size as u64) as usize
    }
}

impl fmt::Display for AState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AState({:#018x})", self.0)
    }
}

impl From<u64> for AState {
    fn from(v: u64) -> Self {
        AState(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_of_all_five_registers() {
        let a = AState::from_registers([1, 2, 4, 8, 16]);
        assert_eq!(a.as_u64(), 1 ^ 2 ^ 4 ^ 8 ^ 16);
    }

    #[test]
    fn different_args_hash_differently() {
        let base = [0x16, 0, 0x103, 4, 4096];
        let a = AState::from_registers(base);
        let mut other = base;
        other[4] = 8192;
        assert_ne!(AState::from_registers(other), a);
    }

    #[test]
    fn arch_round_trip_is_stable() {
        let mut arch = ArchState::new();
        arch.set_syscall_registers(0x120, 7, 65536);
        arch.enter_privileged();
        let first = AState::from_arch(&arch);
        arch.exit_privileged();
        arch.enter_privileged();
        assert_eq!(AState::from_arch(&arch), first);
    }

    #[test]
    fn index_bits_in_range() {
        for v in [0u64, 1, 1499, 1500, u64::MAX] {
            let idx = AState::from(v).index_bits(1500);
            assert!(idx < 1500);
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!AState::from(7u64).to_string().is_empty());
    }
}
