//! Set-associative predictor organisation.
//!
//! The paper evaluates the two extremes — a fully-associative 200-entry
//! CAM and a 1,500-entry tag-less direct-mapped RAM (§III-A). Real
//! hardware would likely land between them: a set-associative table with
//! *partial* tags, trading the CAM's match ports for a handful of
//! comparators per set while keeping most of its conflict resistance.
//! This organisation completes the design space for the ablation bench.

use crate::astate::AState;
use crate::predictor::{
    is_close, Prediction, PredictionSource, PredictorStats, RunLengthPredictor,
};
use core::fmt;
use osoffload_sim::WindowedMean;

/// Bits of the AState kept as the per-entry partial tag. 16 bits makes a
/// false tag match vanishingly rare at our AState working-set sizes while
/// keeping the entry at 34 bits.
const TAG_BITS: u32 = 16;

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u16,
    last_len: u16,
    confidence: u8,
    last_use: u64,
    valid: bool,
}

const EMPTY: Way = Way {
    tag: 0,
    last_len: 0,
    confidence: 0,
    last_use: 0,
    valid: false,
};

/// A set-associative, partial-tag run-length predictor.
///
/// # Examples
///
/// ```
/// use osoffload_core::setassoc::SetAssocPredictor;
/// use osoffload_core::{AState, RunLengthPredictor};
///
/// let mut p = SetAssocPredictor::new(64, 4);
/// let a = AState::from(0xFEEDu64);
/// for _ in 0..2 {
///     let pred = p.predict(a);
///     p.learn(a, pred, 1_234);
/// }
/// assert_eq!(p.predict(a).length, 1_234);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocPredictor {
    ways: Vec<Way>,
    sets: usize,
    assoc: usize,
    clock: u64,
    global: WindowedMean,
    stats: PredictorStats,
}

impl SetAssocPredictor {
    /// Creates a table with `sets × assoc` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0, "SetAssocPredictor: sets must be positive");
        assert!(
            assoc > 0,
            "SetAssocPredictor: associativity must be positive"
        );
        SetAssocPredictor {
            ways: vec![EMPTY; sets * assoc],
            sets,
            assoc,
            clock: 0,
            global: WindowedMean::new(3),
            stats: PredictorStats::default(),
        }
    }

    /// A 64-set × 4-way (256-entry) configuration sized like the paper's
    /// CAM but with 4 comparators instead of 200.
    pub fn paper_sized() -> Self {
        SetAssocPredictor::new(64, 4)
    }

    /// Total entry count.
    pub fn capacity(&self) -> usize {
        self.ways.len()
    }

    fn index(&self, astate: AState) -> (usize, u16) {
        // Hardware would XOR-fold the AState before slicing; a raw bit
        // slice would waste the tag on low-entropy bits (our AStates
        // concentrate their entropy in the low 20 bits). One multiply
        // mixes all 64 bits into both the set index and the tag.
        let mixed = astate.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let set = (mixed >> 16) as usize % self.sets;
        let tag = (mixed >> 48) as u16;
        (set, tag)
    }

    fn set_range(&self, set: usize) -> core::ops::Range<usize> {
        set * self.assoc..(set + 1) * self.assoc
    }

    fn global_prediction(&self) -> Prediction {
        Prediction {
            length: self.global.mean().round() as u64,
            source: PredictionSource::Global,
        }
    }
}

impl RunLengthPredictor for SetAssocPredictor {
    fn predict(&mut self, astate: AState) -> Prediction {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.index(astate);
        let range = self.set_range(set);
        if let Some(way) = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.last_use = clock;
            if way.confidence == 0 {
                self.global_prediction()
            } else {
                Prediction {
                    length: way.last_len as u64,
                    source: PredictionSource::Local,
                }
            }
        } else {
            self.global_prediction()
        }
    }

    fn learn(&mut self, astate: AState, prediction: Prediction, actual: u64) {
        self.stats.exact.record(prediction.length == actual);
        self.stats
            .within_close
            .record(is_close(prediction.length, actual));
        self.stats.underestimates.record(prediction.length < actual);
        self.stats
            .local_source
            .record(prediction.source == PredictionSource::Local);

        self.clock += 1;
        let clock = self.clock;
        let close = is_close(prediction.length, actual);
        let (set, tag) = self.index(astate);
        let range = self.set_range(set);
        let clamped = actual.min(u16::MAX as u64) as u16;

        if let Some(way) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            if close {
                if way.confidence < 3 {
                    way.confidence += 1;
                }
            } else if way.confidence > 0 {
                way.confidence -= 1;
            }
            way.last_len = clamped;
            way.last_use = clock;
        } else {
            // Allocate into a free way or evict the set's LRU entry.
            let start = range.start;
            let slot = self.ways[range.clone()]
                .iter()
                .position(|w| !w.valid)
                .unwrap_or_else(|| {
                    self.ways[range]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.last_use)
                        .map(|(i, _)| i)
                        .expect("assoc > 0")
                });
            self.ways[start + slot] = Way {
                tag,
                last_len: clamped,
                confidence: 1,
                last_use: clock,
                valid: true,
            };
        }
        self.global.record(actual as f64);
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    fn storage_bytes(&self) -> usize {
        // Per entry: 16-bit partial tag + 16-bit length + 2-bit confidence.
        (self.ways.len() * (TAG_BITS as usize + 16 + 2)).div_ceil(8)
    }

    fn organization(&self) -> &'static str {
        "set-associative (partial tags)"
    }
}

impl fmt::Display for SetAssocPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} set-associative ({} B): {}",
            self.sets,
            self.assoc,
            self.storage_bytes(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> AState {
        AState::from(v)
    }

    fn teach(p: &mut SetAssocPredictor, astate: AState, len: u64, times: usize) {
        for _ in 0..times {
            let pred = p.predict(astate);
            p.learn(astate, pred, len);
        }
    }

    #[test]
    fn learns_per_astate() {
        let mut p = SetAssocPredictor::paper_sized();
        teach(&mut p, a(0x1111_0001), 700, 3);
        teach(&mut p, a(0x2222_0002), 9_000, 3);
        assert_eq!(p.predict(a(0x1111_0001)).length, 700);
        assert_eq!(p.predict(a(0x2222_0002)).length, 9_000);
    }

    #[test]
    fn cold_falls_back_to_global() {
        let mut p = SetAssocPredictor::paper_sized();
        teach(&mut p, a(1), 300, 1);
        let pred = p.predict(a(0xFFFF_FFFF));
        assert_eq!(pred.source, PredictionSource::Global);
        assert_eq!(pred.length, 300);
    }

    #[test]
    fn set_conflicts_evict_lru() {
        // A 1-set table forces every AState into the same set;
        // associativity 2 means the third distinct AState evicts the LRU.
        let mut p = SetAssocPredictor::new(1, 2);
        teach(&mut p, a(1), 100, 2);
        teach(&mut p, a(2), 200, 2);
        teach(&mut p, a(1), 100, 1); // AState 2 becomes LRU
        teach(&mut p, a(3), 300, 1); // evicts AState 2
        assert_eq!(p.predict(a(1)).length, 100);
        assert_eq!(p.predict(a(3)).length, 300);
        assert_eq!(p.predict(a(2)).source, PredictionSource::Global);
    }

    #[test]
    fn distinct_astates_rarely_alias() {
        // With hashed 16-bit tags, distinct AStates should practically
        // never collide at our working-set sizes.
        let mut p = SetAssocPredictor::new(64, 4);
        for i in 0..200u64 {
            teach(&mut p, a(i.wrapping_mul(0x100) + 7), 100 + i, 1);
        }
        let mut collisions = 0;
        for i in 200..400u64 {
            if p.predict(a(i.wrapping_mul(0x100) + 7)).source == PredictionSource::Local {
                collisions += 1;
            }
        }
        assert!(collisions <= 4, "too many tag collisions: {collisions}");
    }

    #[test]
    fn storage_is_between_cam_and_direct_mapped() {
        use crate::predictor::{CamPredictor, DirectMappedPredictor};
        let sa = SetAssocPredictor::paper_sized();
        let cam = CamPredictor::paper_default();
        let dm = DirectMappedPredictor::paper_default();
        // Per entry the set-associative table is far cheaper than the
        // CAM (no 64-bit tag) and slightly richer than the tag-less RAM.
        let per = |bytes: usize, entries: usize| bytes as f64 / entries as f64;
        assert!(per(sa.storage_bytes(), sa.capacity()) < per(cam.storage_bytes(), cam.capacity()));
        assert!(per(sa.storage_bytes(), sa.capacity()) > per(dm.storage_bytes(), dm.capacity()));
    }

    #[test]
    fn confidence_gates_as_in_cam() {
        let mut p = SetAssocPredictor::paper_sized();
        teach(&mut p, a(7), 1_000, 1);
        // A wildly different observation drops confidence to 0.
        let pred = p.predict(a(7));
        p.learn(a(7), pred, 60_000);
        assert_eq!(p.predict(a(7)).source, PredictionSource::Global);
    }

    #[test]
    #[should_panic(expected = "sets must be positive")]
    fn zero_sets_rejected() {
        SetAssocPredictor::new(0, 2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SetAssocPredictor::paper_sized().to_string().is_empty());
    }
}
