//! Property-style tests for the predictor, policies and tuner, driven by
//! seeded [`Rng64`] case generation (dependency-free, bit-reproducible).

use crate::astate::AState;
use crate::policy::{DynamicInstrumentation, HardwarePredictor, OffloadPolicy, OsEntry};
use crate::predictor::{
    is_close, CamPredictor, DirectMappedPredictor, PredictionSource, ReferenceCamPredictor,
    RunLengthPredictor, CLOSE_FRACTION,
};
use crate::tuner::{ThresholdTuner, TunerConfig};
use osoffload_sim::{Instret, Rng64};

const CASES: u64 = 64;

/// `is_close` is reflexive and symmetric-in-direction around the ±5%
/// band of the actual value.
#[test]
fn close_band_properties() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xC105_0000 + case);
        let actual = g.gen_range(1..100_000);
        assert!(is_close(actual, actual));
        let band = ((actual as f64) * 0.05).max(1.0) as u64;
        assert!(is_close(actual + band, actual));
        assert!(!is_close(actual + 2 * band + 2, actual));
    }
}

/// Both organisations give identical answers to identical histories
/// whenever aliasing cannot occur (few AStates, large tables).
#[test]
fn organisations_agree_without_aliasing() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x0F9A_0000 + case);
        let mut cam = CamPredictor::new(256);
        let mut dm = DirectMappedPredictor::new(4096);
        for _ in 0..g.gen_range(1..200) {
            let a = g.gen_range(0..8);
            let len = g.gen_range(50..5_000);
            // Spread AStates so the direct-mapped index bits differ.
            let astate = AState::from(a.wrapping_mul(0x100) + 7);
            let pc = cam.predict(astate);
            let pd = dm.predict(astate);
            assert_eq!(pc.length, pd.length);
            assert_eq!(pc.source, pd.source);
            cam.learn(astate, pc, len);
            dm.learn(astate, pd, len);
        }
    }
}

/// Stats accounting is conserved: totals equal learn() calls, and
/// `exact <= within_close`.
#[test]
fn predictor_stats_conserved() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x57A7_0000 + case);
        let n = g.gen_range(1..300);
        let mut p = CamPredictor::paper_default();
        for _ in 0..n {
            let astate = AState::from(g.gen_range(0..30));
            let len = g.gen_range(1..10_000);
            let pred = p.predict(astate);
            p.learn(astate, pred, len);
        }
        let s = p.stats();
        assert_eq!(s.exact.total(), n);
        assert!(s.exact.hits() <= s.within_close.hits());
        assert_eq!(s.underestimates.total(), n);
    }
}

/// HI and DI make identical off-load decisions from identical histories
/// — "DI is the functional equivalent of the hardware prediction engine"
/// — differing only in overhead.
#[test]
fn di_is_functionally_equivalent_to_hi() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xD1F0_0000 + case);
        let threshold = g.gen_range(0..10_000);
        let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), threshold);
        let mut di = DynamicInstrumentation::new(CamPredictor::paper_default(), threshold, 150);
        for _ in 0..g.gen_range(1..200) {
            let a = g.gen_range(0..20);
            let len = g.gen_range(10..20_000);
            let entry = OsEntry {
                astate: AState::from(a),
                routine: a,
            };
            let dh = hi.decide(entry);
            let dd = di.decide(entry);
            assert_eq!(dh.offload, dd.offload);
            assert!(dd.overhead_cycles > dh.overhead_cycles);
            hi.complete(entry, &dh, len);
            di.complete(entry, &dd, len);
        }
    }
}

/// The tuner always directs thresholds from its candidate grid and epoch
/// lengths within [sample, cap].
#[test]
fn tuner_outputs_stay_on_grid() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x7A4E_0000 + case);
        let priv_frac = g.next_f64();
        let cfg = TunerConfig {
            candidates: vec![0, 100, 500, 1_000, 5_000, 10_000],
            sample_epoch: Instret::new(100),
            stable_base: Instret::new(400),
            stable_cap: Instret::new(1_600),
            improvement: 0.01,
            os_heavy_pivot: 0.10,
            initial_os_heavy: 1_000,
            initial_os_light: 10_000,
        };
        let grid = cfg.candidates.clone();
        let mut tuner = ThresholdTuner::new(cfg);
        let d = tuner.initialize(priv_frac);
        assert!(grid.contains(&d.threshold));
        let n = g.gen_range(1..200);
        for _ in 0..n {
            let d = tuner.on_epoch_end(g.next_f64());
            assert!(
                grid.contains(&d.threshold),
                "off-grid threshold {}",
                d.threshold
            );
            assert!(d.epoch_len >= Instret::new(100) && d.epoch_len <= Instret::new(1_600));
        }
        assert_eq!(tuner.history().len(), n as usize);
    }
}

/// The integer reformulation of the close check (`diff <= 1 || diff <=
/// actual / 20`) classifies exactly like the original float band
/// `|Δ| <= max(actual * CLOSE_FRACTION, 1)` — swept densely near the
/// boundary and at random points across the range.
#[test]
fn integer_close_matches_float_band() {
    let float_close = |predicted: u64, actual: u64| {
        let tolerance = (actual as f64 * CLOSE_FRACTION).max(1.0);
        ((predicted as f64) - (actual as f64)).abs() <= tolerance
    };
    // Dense sweep around the 5% boundary for every small actual.
    for actual in 0..2_000u64 {
        let band = actual / 20 + 2;
        for predicted in actual.saturating_sub(band + 2)..=actual + band + 2 {
            assert_eq!(
                is_close(predicted, actual),
                float_close(predicted, actual),
                "predicted={predicted} actual={actual}"
            );
        }
    }
    // Random points across the practical range of run lengths.
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x1C10_5E00 + case);
        for _ in 0..256 {
            let actual = g.gen_range(0..2_000_000);
            let offset = g.gen_range(0..actual / 10 + 4);
            for predicted in [actual.saturating_sub(offset), actual + offset] {
                assert_eq!(
                    is_close(predicted, actual),
                    float_close(predicted, actual),
                    "predicted={predicted} actual={actual}"
                );
            }
        }
    }
}

/// The indexed CAM is observationally identical to the retained
/// linear-scan reference: same predictions, same confidence/LRU entry
/// state (hence same victim order), same stats — over long random
/// observation streams that force aliasing and LRU eviction.
#[test]
fn indexed_cam_matches_reference_scan() {
    let mut total_obs = 0u64;
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xCA3D_0000 + case);
        // Small capacities force eviction; AState pools larger than both
        // the capacity and the 64-slot index force aliasing in the index.
        let capacity = g.gen_range(1..48) as usize;
        let mut cam = CamPredictor::new(capacity);
        let mut reference = ReferenceCamPredictor::new(capacity);
        let pool = g.gen_range(2..400);
        for _ in 0..256 {
            let astate = AState::from(g.gen_range(0..pool).wrapping_mul(0x9E37_79B9));
            let len = g.gen_range(1..50_000);
            let pc = cam.predict(astate);
            let pr = reference.predict(astate);
            assert_eq!(pc, pr, "prediction diverged (capacity {capacity})");
            cam.learn(astate, pc, len);
            reference.learn(astate, pr, len);
            assert_eq!(
                cam.entries_snapshot(),
                reference.entries_snapshot(),
                "entry state diverged (capacity {capacity})"
            );
            total_obs += 1;
        }
        assert_eq!(cam.resident(), reference.resident());
        assert_eq!(cam.stats().exact.hits(), reference.stats().exact.hits());
        assert_eq!(
            cam.stats().within_close.hits(),
            reference.stats().within_close.hits()
        );
    }
    assert!(
        total_obs >= 10_000,
        "need >=10k observations, got {total_obs}"
    );
}

/// Cold predictors always fall back to the global source.
#[test]
fn cold_lookups_are_global() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xC01D_0000 + case);
        let mut p = CamPredictor::paper_default();
        assert_eq!(
            p.predict(AState::from(g.next_u64())).source,
            PredictionSource::Global
        );
    }
}
