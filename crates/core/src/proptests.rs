//! Property-based tests for the predictor, policies and tuner.

use crate::astate::AState;
use crate::policy::{
    DynamicInstrumentation, HardwarePredictor, OffloadPolicy, OsEntry,
};
use crate::predictor::{
    is_close, CamPredictor, DirectMappedPredictor, PredictionSource, RunLengthPredictor,
};
use crate::tuner::{ThresholdTuner, TunerConfig};
use osoffload_sim::Instret;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `is_close` is reflexive and symmetric-in-direction around the
    /// ±5% band of the actual value.
    #[test]
    fn close_band_properties(actual in 1u64..100_000) {
        prop_assert!(is_close(actual, actual));
        let band = ((actual as f64) * 0.05).max(1.0) as u64;
        prop_assert!(is_close(actual + band, actual));
        prop_assert!(!is_close(actual + 2 * band + 2, actual));
    }

    /// Both organisations give identical answers to identical histories
    /// whenever aliasing cannot occur (few AStates, large tables).
    #[test]
    fn organisations_agree_without_aliasing(
        pairs in prop::collection::vec((0u64..8, 50u64..5_000), 1..200)
    ) {
        let mut cam = CamPredictor::new(256);
        let mut dm = DirectMappedPredictor::new(4096);
        for &(a, len) in &pairs {
            // Spread AStates so the direct-mapped index bits differ.
            let astate = AState::from(a.wrapping_mul(0x100) + 7);
            let pc = cam.predict(astate);
            let pd = dm.predict(astate);
            prop_assert_eq!(pc.length, pd.length);
            prop_assert_eq!(pc.source, pd.source);
            cam.learn(astate, pc, len);
            dm.learn(astate, pd, len);
        }
    }

    /// Stats accounting is conserved: totals equal learn() calls, and
    /// `exact <= within_close`.
    #[test]
    fn predictor_stats_conserved(
        pairs in prop::collection::vec((0u64..30, 1u64..10_000), 1..300)
    ) {
        let mut p = CamPredictor::paper_default();
        for &(a, len) in &pairs {
            let astate = AState::from(a);
            let pred = p.predict(astate);
            p.learn(astate, pred, len);
        }
        let s = p.stats();
        prop_assert_eq!(s.exact.total(), pairs.len() as u64);
        prop_assert!(s.exact.hits() <= s.within_close.hits());
        prop_assert_eq!(s.underestimates.total(), pairs.len() as u64);
    }

    /// HI and DI make identical off-load decisions from identical
    /// histories — "DI is the functional equivalent of the hardware
    /// prediction engine" — differing only in overhead.
    #[test]
    fn di_is_functionally_equivalent_to_hi(
        invocations in prop::collection::vec((0u64..20, 10u64..20_000), 1..200),
        threshold in 0u64..10_000,
    ) {
        let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), threshold);
        let mut di = DynamicInstrumentation::new(CamPredictor::paper_default(), threshold, 150);
        for &(a, len) in &invocations {
            let entry = OsEntry { astate: AState::from(a), routine: a };
            let dh = hi.decide(entry);
            let dd = di.decide(entry);
            prop_assert_eq!(dh.offload, dd.offload);
            prop_assert!(dd.overhead_cycles > dh.overhead_cycles);
            hi.complete(entry, &dh, len);
            di.complete(entry, &dd, len);
        }
    }

    /// The tuner always directs thresholds from its candidate grid and
    /// epoch lengths within [sample, cap].
    #[test]
    fn tuner_outputs_stay_on_grid(
        rates in prop::collection::vec(0.0f64..1.0, 1..200),
        priv_frac in 0.0f64..1.0,
    ) {
        let cfg = TunerConfig {
            candidates: vec![0, 100, 500, 1_000, 5_000, 10_000],
            sample_epoch: Instret::new(100),
            stable_base: Instret::new(400),
            stable_cap: Instret::new(1_600),
            improvement: 0.01,
            os_heavy_pivot: 0.10,
            initial_os_heavy: 1_000,
            initial_os_light: 10_000,
        };
        let grid = cfg.candidates.clone();
        let mut tuner = ThresholdTuner::new(cfg);
        let d = tuner.initialize(priv_frac);
        prop_assert!(grid.contains(&d.threshold));
        for &r in &rates {
            let d = tuner.on_epoch_end(r);
            prop_assert!(grid.contains(&d.threshold), "off-grid threshold {}", d.threshold);
            prop_assert!(d.epoch_len >= Instret::new(100) && d.epoch_len <= Instret::new(1_600));
        }
        prop_assert_eq!(tuner.history().len(), rates.len());
    }

    /// Cold predictors always fall back to the global source.
    #[test]
    fn cold_lookups_are_global(a in prop::num::u64::ANY) {
        let mut p = CamPredictor::paper_default();
        prop_assert_eq!(p.predict(AState::from(a)).source, PredictionSource::Global);
    }
}
