//! Predictor design ablations.
//!
//! The paper's predictor (§III-A) composes three ideas: a *per-AState*
//! last-value table, a 2-bit *confidence* filter, and a *global*
//! last-three-invocations fallback. These reduced variants remove one
//! idea each, so the benches can attribute the accuracy to its source:
//!
//! * [`GlobalOnlyPredictor`] — no table at all: every prediction is the
//!   global mean. Tests whether per-AState history matters.
//! * [`LastValuePredictor`] — the CAM without the confidence counter or
//!   the fallback: always predict the last length seen for the AState
//!   (cold entries predict 0). Tests what the confidence/fallback pair
//!   buys on noisy entries.

use crate::astate::AState;
use crate::predictor::{Prediction, PredictionSource, PredictorStats, RunLengthPredictor};
use osoffload_sim::WindowedMean;
use std::collections::HashMap;

/// Ablation: predictions come only from the global last-three mean.
///
/// # Examples
///
/// ```
/// use osoffload_core::ablation::GlobalOnlyPredictor;
/// use osoffload_core::{AState, RunLengthPredictor};
///
/// let mut p = GlobalOnlyPredictor::new();
/// let a = AState::from(1u64);
/// let pred = p.predict(a);
/// p.learn(a, pred, 900);
/// // Any AState now predicts the global mean.
/// assert_eq!(p.predict(AState::from(999u64)).length, 900);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalOnlyPredictor {
    global: WindowedMean,
    stats: PredictorStats,
}

impl GlobalOnlyPredictor {
    /// Creates an empty global-only predictor.
    pub fn new() -> Self {
        GlobalOnlyPredictor {
            global: WindowedMean::new(3),
            stats: PredictorStats::default(),
        }
    }
}

impl Default for GlobalOnlyPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl RunLengthPredictor for GlobalOnlyPredictor {
    fn predict(&mut self, _astate: AState) -> Prediction {
        Prediction {
            length: self.global.mean().round() as u64,
            source: PredictionSource::Global,
        }
    }

    fn learn(&mut self, _astate: AState, prediction: Prediction, actual: u64) {
        self.stats_record(prediction, actual);
        self.global.record(actual as f64);
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    fn storage_bytes(&self) -> usize {
        // Three 16-bit history registers.
        6
    }

    fn organization(&self) -> &'static str {
        "global-only (no table)"
    }
}

impl GlobalOnlyPredictor {
    fn stats_record(&mut self, prediction: Prediction, actual: u64) {
        // PredictorStats::record is private to the predictor module;
        // replicate its accounting through the public Ratio fields.
        self.stats.exact.record(prediction.length == actual);
        self.stats
            .within_close
            .record(crate::predictor::is_close(prediction.length, actual));
        self.stats.underestimates.record(prediction.length < actual);
        self.stats
            .local_source
            .record(prediction.source == PredictionSource::Local);
    }
}

/// Ablation: unbounded per-AState last-value table, no confidence, no
/// fallback.
///
/// This is also the *infinite-history* reference the paper compares its
/// 200-entry CAM against ("a fully-associative predictor table with 200
/// entries yields close to optimal (infinite history) performance") —
/// modulo the removed confidence filter.
///
/// # Examples
///
/// ```
/// use osoffload_core::ablation::LastValuePredictor;
/// use osoffload_core::{AState, RunLengthPredictor};
///
/// let mut p = LastValuePredictor::new();
/// let a = AState::from(5u64);
/// let pred = p.predict(a);
/// assert_eq!(pred.length, 0); // cold: no fallback to soften it
/// p.learn(a, pred, 1234);
/// assert_eq!(p.predict(a).length, 1234);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    table: HashMap<AState, u64>,
    stats: PredictorStats,
}

impl LastValuePredictor {
    /// Creates an empty last-value predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of AStates remembered.
    pub fn resident(&self) -> usize {
        self.table.len()
    }
}

impl RunLengthPredictor for LastValuePredictor {
    fn predict(&mut self, astate: AState) -> Prediction {
        match self.table.get(&astate) {
            Some(&len) => Prediction {
                length: len,
                source: PredictionSource::Local,
            },
            None => Prediction {
                length: 0,
                source: PredictionSource::Global,
            },
        }
    }

    fn learn(&mut self, astate: AState, prediction: Prediction, actual: u64) {
        self.stats.exact.record(prediction.length == actual);
        self.stats
            .within_close
            .record(crate::predictor::is_close(prediction.length, actual));
        self.stats.underestimates.record(prediction.length < actual);
        self.stats
            .local_source
            .record(prediction.source == PredictionSource::Local);
        self.table.insert(astate, actual);
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    fn storage_bytes(&self) -> usize {
        // Unbounded software table: 8-byte key + 8-byte value.
        self.table.len() * 16
    }

    fn organization(&self) -> &'static str {
        "infinite last-value (no confidence)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> AState {
        AState::from(v)
    }

    #[test]
    fn global_only_ignores_astate() {
        let mut p = GlobalOnlyPredictor::new();
        let pred = p.predict(a(1));
        p.learn(a(1), pred, 100);
        let pred = p.predict(a(2));
        p.learn(a(2), pred, 200);
        // Mean of {100, 200} regardless of which AState asks.
        assert_eq!(p.predict(a(1)).length, 150);
        assert_eq!(p.predict(a(77)).length, 150);
        assert_eq!(p.predict(a(77)).source, PredictionSource::Global);
    }

    #[test]
    fn global_only_storage_is_trivial() {
        assert!(GlobalOnlyPredictor::new().storage_bytes() < 16);
    }

    #[test]
    fn last_value_is_per_astate_and_unbounded() {
        let mut p = LastValuePredictor::new();
        for i in 0..1_000u64 {
            let astate = a(i);
            let pred = p.predict(astate);
            p.learn(astate, pred, i * 10);
        }
        assert_eq!(p.resident(), 1_000);
        assert_eq!(p.predict(a(7)).length, 70);
        assert_eq!(p.predict(a(999)).length, 9_990);
    }

    #[test]
    fn last_value_has_no_cold_fallback() {
        let mut p = LastValuePredictor::new();
        let pred = p.predict(a(1));
        p.learn(a(1), pred, 5_000);
        // A cold AState predicts 0, not the recent history.
        assert_eq!(p.predict(a(2)).length, 0);
    }

    #[test]
    fn both_variants_track_stats() {
        let mut g = GlobalOnlyPredictor::new();
        let mut l = LastValuePredictor::new();
        for i in 0..10u64 {
            for p in [&mut g as &mut dyn RunLengthPredictor, &mut l] {
                let pred = p.predict(a(i % 3));
                p.learn(a(i % 3), pred, 500);
            }
        }
        assert_eq!(g.stats().exact.total(), 10);
        assert_eq!(l.stats().exact.total(), 10);
        // The per-AState table converges to exactness; the global mean
        // does too once all lengths equal 500.
        assert!(l.stats().exact.hits() >= 7);
        g.reset_stats();
        assert_eq!(g.stats().exact.total(), 0);
    }

    #[test]
    fn organizations_are_labelled() {
        assert!(GlobalOnlyPredictor::new().organization().contains("global"));
        assert!(LastValuePredictor::new()
            .organization()
            .contains("last-value"));
    }
}
