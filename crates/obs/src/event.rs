//! The structured event vocabulary.
//!
//! Every observable moment of a run — a privileged invocation, a
//! migration leg, an epoch boundary, a tuner decision — is one
//! [`Event`]: a timestamped span (or instant) on a [`Track`], carrying a
//! typed [`EventKind`] payload. The vocabulary is deliberately closed:
//! exporters can render every variant without a fallback path, and the
//! hot-path payloads hold only `Copy` data and `&'static str` names so
//! that recording an event never allocates.

/// Where an event belongs on the timeline.
///
/// Tracks map to Chrome-trace `tid`s: software threads come first, then
/// hardware cores (offset so they never collide with realistic thread
/// counts), one control track for the tuner, and runner workers for
/// sweep self-profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Track {
    /// A software thread (per-thread spans: invocations, user bursts).
    Thread(usize),
    /// A hardware core (service spans on the OS core).
    Core(usize),
    /// The epoch/tuner control track.
    Control,
    /// A runner worker thread (sweep self-profiling).
    Worker(usize),
}

impl Track {
    /// The Chrome-trace thread id this track renders as.
    pub fn tid(&self) -> u64 {
        match *self {
            Track::Thread(t) => t as u64,
            Track::Core(c) => 1_000 + c as u64,
            Track::Control => 999,
            Track::Worker(w) => w as u64,
        }
    }

    /// Human-readable track label (Chrome-trace `thread_name` metadata).
    pub fn label(&self) -> String {
        match *self {
            Track::Thread(t) => format!("thread {t}"),
            Track::Core(c) => format!("core {c}"),
            Track::Control => "epoch/tuner".to_string(),
            Track::Worker(w) => format!("worker {w}"),
        }
    }
}

/// The typed payload of one event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One privileged invocation, end to end (entry to return).
    Invocation {
        /// Entry-point name (from the syscall catalog).
        name: &'static str,
        /// Trap-convention routine number.
        trap: u64,
        /// AState hash at entry.
        astate: u64,
        /// Predicted run length, if the policy predicted.
        predicted: Option<u64>,
        /// Whether the invocation was off-loaded (or throttled).
        offloaded: bool,
        /// Actual run length in instructions.
        actual_len: u64,
        /// Cycles spent queued for the OS core (0 when local).
        queue_delay: u64,
    },
    /// A user-mode execution burst.
    UserBurst {
        /// Burst length in instructions.
        len: u64,
    },
    /// One migration leg of an off-loaded thread.
    Migration {
        /// `true` for user→OS, `false` for the return leg.
        outbound: bool,
    },
    /// Time an off-loaded request waited for the OS core (§V-C).
    QueueWait,
    /// The OS core serving one off-loaded invocation.
    OsService {
        /// Entry-point name.
        name: &'static str,
        /// Service length in instructions.
        len: u64,
    },
    /// An epoch boundary sample (instant).
    Epoch {
        /// Zero-based epoch index.
        index: u64,
        /// L2 hit rate measured over the sampling interval.
        l2_hit_rate: f64,
    },
    /// A §III-B tuner decision (instant).
    TunerDecision {
        /// Threshold `N` the tuner directed.
        threshold: u64,
        /// Epoch length the tuner directed.
        epoch_len: u64,
        /// Whether the new threshold was adopted (vs. held).
        adopted: bool,
    },
    /// One unit of runner work (a sweep point); timestamps are in
    /// microseconds of sweep wall-clock rather than simulated cycles.
    Task {
        /// Point identifier.
        name: String,
        /// Whether the evaluation completed.
        ok: bool,
    },
    /// A point evaluation being re-run after a failed attempt (instant,
    /// runner control track).
    Retry {
        /// The attempt that failed (1 = first try).
        attempt: u32,
    },
    /// A point cancelled by the worker watchdog (instant, runner
    /// control track).
    Timeout {
        /// The soft deadline that expired, in milliseconds.
        deadline_ms: u64,
    },
    /// Deterministic fault-plan injections firing on a point (instant,
    /// runner control track).
    Fault {
        /// How many injections (panics, delays, I/O errors) hit the
        /// point.
        injected: u32,
    },
}

impl EventKind {
    /// The display name exporters use (`name` in Chrome traces).
    pub fn name(&self) -> &str {
        match self {
            EventKind::Invocation { name, .. } | EventKind::OsService { name, .. } => name,
            EventKind::UserBurst { .. } => "user",
            EventKind::Migration { outbound: true } => "migrate-out",
            EventKind::Migration { outbound: false } => "migrate-back",
            EventKind::QueueWait => "queue-wait",
            EventKind::Epoch { .. } => "epoch",
            EventKind::TunerDecision { .. } => "tuner",
            EventKind::Task { name, .. } => name,
            EventKind::Retry { .. } => "retry",
            EventKind::Timeout { .. } => "timeout",
            EventKind::Fault { .. } => "fault",
        }
    }

    /// The event category (`cat` in Chrome traces), used for filtering.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Invocation { .. } => "invocation",
            EventKind::UserBurst { .. } => "user",
            EventKind::Migration { .. } => "migration",
            EventKind::QueueWait => "queue",
            EventKind::OsService { .. } => "os-service",
            EventKind::Epoch { .. } => "epoch",
            EventKind::TunerDecision { .. } => "tuner",
            EventKind::Task { .. } => "runner",
            EventKind::Retry { .. } | EventKind::Timeout { .. } | EventKind::Fault { .. } => {
                "runner"
            }
        }
    }

    /// Whether the event is an instantaneous marker rather than a span.
    pub fn is_instant(&self) -> bool {
        matches!(
            self,
            EventKind::Epoch { .. }
                | EventKind::TunerDecision { .. }
                | EventKind::Retry { .. }
                | EventKind::Timeout { .. }
                | EventKind::Fault { .. }
        )
    }
}

/// One telemetry event: a payload placed at `ts` (simulated cycles, or
/// microseconds for runner tracks) with duration `dur` on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Start timestamp (cycles for simulation tracks).
    pub ts: u64,
    /// Duration (0 for instants).
    pub dur: u64,
    /// Timeline the event belongs to.
    pub track: Track,
    /// Typed payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_tids_do_not_collide() {
        let tracks = [
            Track::Thread(0),
            Track::Thread(7),
            Track::Core(0),
            Track::Core(3),
            Track::Control,
        ];
        let tids: std::collections::HashSet<u64> = tracks.iter().map(|t| t.tid()).collect();
        assert_eq!(tids.len(), tracks.len());
        assert!(!Track::Worker(2).label().is_empty());
    }

    #[test]
    fn kind_names_and_categories() {
        let inv = EventKind::Invocation {
            name: "read",
            trap: 0x100,
            astate: 1,
            predicted: Some(10),
            offloaded: true,
            actual_len: 12,
            queue_delay: 0,
        };
        assert_eq!(inv.name(), "read");
        assert_eq!(inv.category(), "invocation");
        assert!(!inv.is_instant());
        assert_eq!(
            EventKind::Migration { outbound: true }.name(),
            "migrate-out"
        );
        assert_eq!(
            EventKind::Migration { outbound: false }.name(),
            "migrate-back"
        );
        assert!(EventKind::Epoch {
            index: 0,
            l2_hit_rate: 0.5
        }
        .is_instant());
        let task = EventKind::Task {
            name: "0001/apache".to_string(),
            ok: true,
        };
        assert_eq!(task.name(), "0001/apache");
        assert_eq!(task.category(), "runner");
    }
}
