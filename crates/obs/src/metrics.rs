//! The metrics registry: named series sampled at epoch boundaries.
//!
//! Metrics are *observational*: the simulator keeps its existing
//! accumulators and, at each epoch boundary, snapshots them into the
//! registry via [`MetricsRegistry::set`] + [`MetricsRegistry::commit_sample`].
//! Nothing is incremented on the hot path, so enabling metrics cannot
//! perturb simulated behaviour. The resulting table is schema-stable:
//! one row per epoch, one column per registered metric, exported as CSV
//! or stable-key JSON.

use std::fmt::Write as _;

/// Handle to a registered metric (an index into the registry columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// How a metric's samples should be read (and formatted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative count; rendered without decimals.
    Counter,
    /// Point-in-time level (rates, thresholds); rendered with decimals.
    Gauge,
}

/// One committed row: every metric's value at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRow {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Instructions retired when the sample was taken.
    pub instructions: u64,
    /// Simulated cycle when the sample was taken.
    pub cycles: u64,
    /// One value per registered metric, in registration order.
    pub values: Vec<f64>,
}

/// Registry of named metric series with epoch-boundary sampling.
///
/// # Examples
///
/// ```
/// use osoffload_obs::{MetricKind, MetricsRegistry};
///
/// let mut reg = MetricsRegistry::new();
/// let offloads = reg.register_counter("offloads");
/// let l2 = reg.register_gauge("l2_hit_rate");
/// reg.set(offloads, 42.0);
/// reg.set(l2, 0.93);
/// reg.commit_sample(0, 1_000, 2_500);
/// assert_eq!(reg.samples().len(), 1);
/// assert!(reg.to_csv().starts_with("epoch,instructions,cycles,offloads,l2_hit_rate"));
/// # assert_eq!(reg.kind(offloads), MetricKind::Counter);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    names: Vec<(String, MetricKind)>,
    current: Vec<f64>,
    samples: Vec<SampleRow>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &str, kind: MetricKind) -> MetricId {
        if let Some(i) = self.names.iter().position(|(n, _)| n == name) {
            return MetricId(i);
        }
        assert!(
            self.samples.is_empty(),
            "register metrics before committing samples"
        );
        self.names.push((name.to_string(), kind));
        self.current.push(0.0);
        MetricId(self.names.len() - 1)
    }

    /// Registers (or finds) a cumulative counter column.
    pub fn register_counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Counter)
    }

    /// Registers (or finds) a point-in-time gauge column.
    pub fn register_gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Gauge)
    }

    /// Stages a value for the next [`commit_sample`].
    ///
    /// [`commit_sample`]: MetricsRegistry::commit_sample
    pub fn set(&mut self, id: MetricId, value: f64) {
        self.current[id.0] = value;
    }

    /// Commits the staged values as one epoch-boundary row.
    pub fn commit_sample(&mut self, epoch: u64, instructions: u64, cycles: u64) {
        self.samples.push(SampleRow {
            epoch,
            instructions,
            cycles,
            values: self.current.clone(),
        });
    }

    /// Metric names with kinds, in column order.
    pub fn metrics(&self) -> &[(String, MetricKind)] {
        &self.names
    }

    /// The kind a metric was registered with.
    pub fn kind(&self, id: MetricId) -> MetricKind {
        self.names[id.0].1
    }

    /// Committed rows, oldest first.
    pub fn samples(&self) -> &[SampleRow] {
        &self.samples
    }

    /// Discards committed rows and staged values, keeping the schema.
    pub fn reset_samples(&mut self) {
        self.samples.clear();
        self.current.iter_mut().for_each(|v| *v = 0.0);
    }

    fn format_value(kind: MetricKind, v: f64) -> String {
        match kind {
            MetricKind::Counter => format!("{v:.0}"),
            MetricKind::Gauge => format!("{v:.6}"),
        }
    }

    /// Renders the whole table as CSV (`epoch,instructions,cycles,<metrics…>`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,instructions,cycles");
        for (name, _) in &self.names {
            out.push(',');
            out.push_str(&crate::csv::field(name));
        }
        out.push('\n');
        for row in &self.samples {
            let _ = write!(out, "{},{},{}", row.epoch, row.instructions, row.cycles);
            for (i, v) in row.values.iter().enumerate() {
                out.push(',');
                out.push_str(&Self::format_value(self.names[i].1, *v));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as stable-key JSON
    /// (`{"schema":"osoffload.metrics.v1",...}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"osoffload.metrics.v1\",\"metrics\":[");
        for (i, (name, kind)) in self.names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":\"{}\"}}",
                crate::export::json_string(name),
                match kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                }
            );
        }
        out.push_str("],\"samples\":[");
        for (i, row) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"epoch\":{},\"instructions\":{},\"cycles\":{},\"values\":[",
                row.epoch, row.instructions, row.cycles
            );
            for (j, v) in row.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&Self::format_json_number(*v));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    fn format_json_number(v: f64) -> String {
        if v.is_finite() {
            // Trim to a stable short form: integers render bare.
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.0}")
            } else {
                format!("{v:.6}")
            }
        } else {
            "null".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_by_name() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register_counter("offloads");
        let b = reg.register_counter("offloads");
        assert_eq!(a, b);
        assert_eq!(reg.metrics().len(), 1);
    }

    #[test]
    fn csv_has_one_row_per_commit() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("locals");
        let g = reg.register_gauge("rate");
        reg.set(c, 3.0);
        reg.set(g, 0.5);
        reg.commit_sample(0, 100, 200);
        reg.set(c, 7.0);
        reg.commit_sample(1, 200, 410);
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "epoch,instructions,cycles,locals,rate");
        assert_eq!(lines[1], "0,100,200,3,0.500000");
        assert_eq!(lines[2], "1,200,410,7,0.500000");
    }

    #[test]
    fn json_is_schema_stable() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("n");
        reg.set(c, 2.0);
        reg.commit_sample(0, 10, 20);
        let json = reg.to_json();
        assert!(json.starts_with("{\"schema\":\"osoffload.metrics.v1\""));
        assert!(json.contains("{\"name\":\"n\",\"kind\":\"counter\"}"));
        assert!(json.contains("\"values\":[2]"));
    }

    #[test]
    fn reset_keeps_schema_drops_rows() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("n");
        reg.set(c, 5.0);
        reg.commit_sample(0, 1, 1);
        reg.reset_samples();
        assert!(reg.samples().is_empty());
        assert_eq!(reg.metrics().len(), 1);
        reg.commit_sample(0, 2, 2);
        assert_eq!(reg.samples()[0].values, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "register metrics before committing")]
    fn late_registration_panics() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("a");
        reg.commit_sample(0, 1, 1);
        reg.register_counter("b");
    }
}
