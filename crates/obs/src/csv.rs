//! RFC 4180 CSV escaping and a small conforming parser.
//!
//! The writer side ([`field`]) quotes any field containing a comma,
//! quote, or line break and doubles embedded quotes; everything else
//! passes through verbatim. The parser exists so tests can prove
//! round-trips (`parse(render(rows)) == rows`) without an external
//! crate.

/// Escapes one field per RFC 4180.
///
/// ```
/// use osoffload_obs::csv;
/// assert_eq!(csv::field("plain"), "plain");
/// assert_eq!(csv::field("a,b"), "\"a,b\"");
/// assert_eq!(csv::field("say \"hi\""), "\"say \"\"hi\"\"\"");
/// ```
pub fn field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Renders one record from already-unescaped fields.
pub fn record(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| field(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses CSV text into records of unescaped fields.
///
/// Handles quoted fields, doubled quotes, and embedded separators or
/// line breaks. A trailing newline does not produce an empty record.
pub fn parse(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut fld = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        fld.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => fld.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut fld)),
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    row.push(std::mem::take(&mut fld));
                    records.push(std::mem::take(&mut row));
                    saw_any = false;
                }
                '\n' => {
                    row.push(std::mem::take(&mut fld));
                    records.push(std::mem::take(&mut row));
                    saw_any = false;
                }
                _ => fld.push(c),
            }
        }
    }
    if saw_any {
        row.push(fld);
        records.push(row);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(field("abc_123"), "abc_123");
        assert_eq!(record(&["a".into(), "b".into()]), "a,b");
    }

    #[test]
    fn special_fields_round_trip() {
        let rows: Vec<Vec<String>> = vec![
            vec!["name".into(), "value".into()],
            vec!["comma,inside".into(), "1".into()],
            vec!["quote\"inside".into(), "line\nbreak".into()],
            vec!["".into(), "trailing".into()],
        ];
        let text = rows
            .iter()
            .map(|r| record(r))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(parse(&text), rows);
    }

    #[test]
    fn crlf_and_no_trailing_newline_parse() {
        assert_eq!(
            parse("a,b\r\nc,d"),
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string(), "d".to_string()]
            ]
        );
        assert!(parse("").is_empty());
    }
}
