//! Exporters: Chrome trace-event JSON, metrics CSV/JSON, file layout.
//!
//! [`RunTelemetry`] is the take-away bundle a run hands back: the
//! retained events, the sampled metric table, and the counters needed
//! to judge coverage (seen vs. dropped). Its Chrome-trace rendering
//! follows the trace-event format's JSON-object form
//! (`{"traceEvents":[...]}`) and loads directly into Perfetto or
//! `chrome://tracing`; one simulated cycle is rendered as one
//! microsecond because the format's timestamps are µs.

use crate::event::{Event, EventKind, Track};
use crate::metrics::MetricsRegistry;
use crate::telemetry::TelemetryMode;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Escapes a string's content for embedding inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a string as a quoted JSON value.
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn kind_args(kind: &EventKind) -> String {
    match kind {
        EventKind::Invocation {
            trap,
            astate,
            predicted,
            offloaded,
            actual_len,
            queue_delay,
            ..
        } => {
            let pred = match predicted {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"trap\":{trap},\"astate\":{astate},\"predicted\":{pred},\
                 \"offloaded\":{offloaded},\"actual_len\":{actual_len},\
                 \"queue_delay\":{queue_delay}}}"
            )
        }
        EventKind::UserBurst { len } => format!("{{\"len\":{len}}}"),
        EventKind::Migration { outbound } => format!("{{\"outbound\":{outbound}}}"),
        EventKind::QueueWait => "{}".to_string(),
        EventKind::OsService { len, .. } => format!("{{\"len\":{len}}}"),
        EventKind::Epoch { index, l2_hit_rate } => {
            format!("{{\"index\":{index},\"l2_hit_rate\":{l2_hit_rate:.6}}}")
        }
        EventKind::TunerDecision {
            threshold,
            epoch_len,
            adopted,
        } => {
            format!("{{\"threshold\":{threshold},\"epoch_len\":{epoch_len},\"adopted\":{adopted}}}")
        }
        EventKind::Task { ok, .. } => format!("{{\"ok\":{ok}}}"),
        EventKind::Retry { attempt } => format!("{{\"attempt\":{attempt}}}"),
        EventKind::Timeout { deadline_ms } => format!("{{\"deadline_ms\":{deadline_ms}}}"),
        EventKind::Fault { injected } => format!("{{\"injected\":{injected}}}"),
    }
}

/// Renders events (and optionally metric counter series) as Chrome
/// trace-event JSON. `meta` pairs land in `otherData`.
pub fn chrome_trace(
    events: &[Event],
    metrics: Option<&MetricsRegistry>,
    meta: &[(String, String)],
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, item: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&item);
    };

    // Thread-name metadata for every distinct track, stable order.
    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort();
    tracks.dedup();
    for track in &tracks {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                track.tid(),
                json_string(&track.label())
            ),
        );
    }

    for ev in events {
        let name = json_string(ev.kind.name());
        let cat = ev.kind.category();
        let tid = ev.track.tid();
        let args = kind_args(&ev.kind);
        let item = if ev.kind.is_instant() {
            format!(
                "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"g\",\
                 \"ts\":{},\"pid\":0,\"tid\":{tid},\"args\":{args}}}",
                ev.ts
            )
        } else {
            format!(
                "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{args}}}",
                ev.ts, ev.dur
            )
        };
        push(&mut out, &mut first, item);
    }

    if let Some(reg) = metrics {
        for row in reg.samples() {
            for (i, (name, _)) in reg.metrics().iter().enumerate() {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                         \"args\":{{{}:{}}}}}",
                        json_string(name),
                        row.cycles,
                        json_string(name),
                        row.values[i]
                    ),
                );
            }
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(k), json_string(v));
    }
    out.push_str("}}");
    out
}

/// Everything a telemetry-enabled run hands back for export.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Retained events (newest `capacity`, oldest first).
    pub events: Vec<Event>,
    /// Events that reached the sink, including evicted ones.
    pub events_seen: u64,
    /// Events evicted from the ring.
    pub events_dropped: u64,
    /// Epoch-sampled metric table.
    pub metrics: MetricsRegistry,
    /// The mode the run recorded under.
    pub mode: TelemetryMode,
}

impl RunTelemetry {
    /// Chrome trace-event JSON for the run (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        let meta = vec![
            ("mode".to_string(), self.mode.label().to_string()),
            ("events_seen".to_string(), self.events_seen.to_string()),
            (
                "events_dropped".to_string(),
                self.events_dropped.to_string(),
            ),
        ];
        chrome_trace(&self.events, Some(&self.metrics), &meta)
    }

    /// The metric table as CSV.
    pub fn metrics_csv(&self) -> String {
        self.metrics.to_csv()
    }

    /// The metric table as stable-key JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }

    /// Writes `<base>.trace.json`, `<base>.metrics.csv`, and
    /// `<base>.metrics.json` under `dir`, returning the paths written.
    pub fn write_files(&self, dir: &Path, base: &str) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        for (suffix, body) in [
            ("trace.json", self.chrome_trace()),
            ("metrics.csv", self.metrics_csv()),
            ("metrics.json", self.metrics_json()),
        ] {
            let path = dir.join(format!("{base}.{suffix}"));
            crate::fsio::atomic_write(&path, body.as_bytes())?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts: 10,
                dur: 40,
                track: Track::Thread(0),
                kind: EventKind::Invocation {
                    name: "read",
                    trap: 0x100,
                    astate: 7,
                    predicted: None,
                    offloaded: false,
                    actual_len: 40,
                    queue_delay: 0,
                },
            },
            Event {
                ts: 60,
                dur: 0,
                track: Track::Control,
                kind: EventKind::Epoch {
                    index: 0,
                    l2_hit_rate: 0.75,
                },
            },
        ]
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_string("x\u{1}"), "\"x\\u0001\"");
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_metadata() {
        let trace = chrome_trace(&sample_events(), None, &[("run".into(), "t".into())]);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\",\"s\":\"g\""));
        assert!(trace.contains("\"otherData\":{\"run\":\"t\"}"));
    }

    #[test]
    fn chrome_trace_renders_metric_counters() {
        let mut reg = MetricsRegistry::new();
        let id = reg.register_counter("offloads");
        reg.set(id, 4.0);
        reg.commit_sample(0, 100, 250);
        let trace = chrome_trace(&[], Some(&reg), &[]);
        assert!(trace.contains("\"ph\":\"C\",\"ts\":250"));
        assert!(trace.contains("\"offloads\":4"));
    }

    #[test]
    fn run_telemetry_writes_three_files() {
        let dir = std::env::temp_dir().join("osoffload_obs_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rt = RunTelemetry {
            events: sample_events(),
            events_seen: 2,
            events_dropped: 0,
            metrics: MetricsRegistry::new(),
            mode: TelemetryMode::Full,
        };
        let written = rt.write_files(&dir, "unit").expect("write");
        assert_eq!(written.len(), 3);
        for path in &written {
            assert!(path.exists());
        }
        let trace = std::fs::read_to_string(&written[0]).expect("read");
        assert!(trace.contains("\"events_seen\":\"2\"") || trace.contains("events_seen"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
