//! Unified telemetry substrate for the off-loading simulator.
//!
//! This crate is the observability layer the rest of the workspace
//! plugs into: structured spans and instants ([`Event`]) recorded
//! through a zero-overhead-when-disabled handle ([`Telemetry`]),
//! epoch-sampled metric time series ([`MetricsRegistry`]), and
//! exporters ([`RunTelemetry`], [`chrome_trace`]) that render a run as
//! Chrome trace-event JSON, CSV, and stable-key JSON.
//!
//! Design constraints, in order:
//!
//! 1. **Never perturb the simulation.** Recording is observational:
//!    timestamps come from the simulated clocks, metrics snapshot
//!    accumulators the simulator already keeps, and nothing here feeds
//!    back into scheduling or policy decisions.
//! 2. **Cost nothing when off.** [`Telemetry::emit_with`] takes a
//!    closure; with no sink installed the event is never constructed.
//! 3. **No dependencies.** JSON and CSV are rendered by hand so the
//!    crate builds in a hermetic container.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod event;
pub mod export;
pub mod fsio;
pub mod metrics;
pub mod telemetry;

pub use event::{Event, EventKind, Track};
pub use export::{chrome_trace, json_escape, json_string, RunTelemetry};
pub use fsio::atomic_write;
pub use metrics::{MetricId, MetricKind, MetricsRegistry, SampleRow};
pub use telemetry::{EventBuffer, Telemetry, TelemetryMode};
