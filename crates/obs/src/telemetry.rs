//! The recording handle and its sinks.
//!
//! [`Telemetry`] is the object the simulator holds in its hot path. Its
//! contract is *zero overhead when disabled*: [`emit_with`] takes a
//! closure, so when no sink is installed the event is never even
//! constructed — the whole call is one branch on an `Option`
//! discriminant (proved by `benches/telemetry.rs`).
//!
//! Two sinks exist: a **no-op** sink that counts events and discards
//! them (isolating the cost of event construction for the overhead
//! bench), and a bounded in-memory **ring** that retains the newest
//! events and counts evictions, so full tracing never grows memory
//! unpredictably.
//!
//! [`emit_with`]: Telemetry::emit_with

use crate::event::Event;
use std::collections::VecDeque;

/// How much a run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No sink: `emit_with` is a single never-taken branch.
    #[default]
    Off,
    /// Events are constructed and counted, then discarded.
    Noop,
    /// Events are retained in a bounded ring for export.
    Full,
}

impl TelemetryMode {
    /// Parses a mode name (`off` | `noop` | `full`).
    pub fn parse(s: &str) -> Option<TelemetryMode> {
        match s {
            "off" => Some(TelemetryMode::Off),
            "noop" => Some(TelemetryMode::Noop),
            "full" => Some(TelemetryMode::Full),
            _ => None,
        }
    }

    /// The mode's canonical name.
    pub fn label(&self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Noop => "noop",
            TelemetryMode::Full => "full",
        }
    }
}

/// Bounded ring buffer of events: the newest `capacity` win.
#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventBuffer {
    /// Creates a buffer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventBuffer {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted (or refused at capacity 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Consumes the buffer into a vector, oldest first.
    pub fn into_vec(self) -> Vec<Event> {
        self.ring.into()
    }
}

#[derive(Debug, Clone)]
struct Sink {
    /// `None` = no-op sink (count and discard).
    store: Option<EventBuffer>,
    seen: u64,
}

/// The zero-overhead-when-disabled recording handle.
///
/// # Examples
///
/// ```
/// use osoffload_obs::{Event, EventKind, Telemetry, Track};
///
/// let mut t = Telemetry::buffered(16);
/// t.emit_with(|| Event {
///     ts: 100,
///     dur: 0,
///     track: Track::Control,
///     kind: EventKind::Epoch { index: 0, l2_hit_rate: 0.9 },
/// });
/// assert_eq!(t.seen(), 1);
/// assert_eq!(t.events().count(), 1);
///
/// let mut off = Telemetry::off();
/// off.emit_with(|| unreachable!("closure must not run when disabled"));
/// assert_eq!(off.seen(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    sink: Option<Sink>,
}

impl Telemetry {
    /// A disabled handle (the hot path sees one branch, nothing else).
    pub fn off() -> Self {
        Telemetry { sink: None }
    }

    /// A counting handle that discards every event after construction.
    pub fn noop() -> Self {
        Telemetry {
            sink: Some(Sink {
                store: None,
                seen: 0,
            }),
        }
    }

    /// A recording handle retaining the newest `capacity` events.
    pub fn buffered(capacity: usize) -> Self {
        Telemetry {
            sink: Some(Sink {
                store: Some(EventBuffer::new(capacity)),
                seen: 0,
            }),
        }
    }

    /// Builds the handle for a mode (`capacity` applies to `Full`).
    pub fn from_mode(mode: TelemetryMode, capacity: usize) -> Self {
        match mode {
            TelemetryMode::Off => Telemetry::off(),
            TelemetryMode::Noop => Telemetry::noop(),
            TelemetryMode::Full => Telemetry::buffered(capacity),
        }
    }

    /// The mode this handle implements.
    pub fn mode(&self) -> TelemetryMode {
        match &self.sink {
            None => TelemetryMode::Off,
            Some(Sink { store: None, .. }) => TelemetryMode::Noop,
            Some(Sink { store: Some(_), .. }) => TelemetryMode::Full,
        }
    }

    /// Whether any sink is installed (event construction is worthwhile).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `f` — or, when disabled, does
    /// nothing without ever calling `f`.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> Event) {
        if let Some(sink) = self.sink.as_mut() {
            sink.seen += 1;
            let ev = f();
            if let Some(buf) = sink.store.as_mut() {
                buf.push(ev);
            }
        }
    }

    /// Events that reached the sink (including discarded/evicted ones).
    pub fn seen(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.seen)
    }

    /// Events evicted from the ring (0 for off/no-op handles).
    pub fn dropped(&self) -> u64 {
        self.sink
            .as_ref()
            .and_then(|s| s.store.as_ref())
            .map_or(0, |b| b.dropped())
    }

    /// Iterates over retained events, oldest first (empty for off/no-op).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.sink
            .as_ref()
            .and_then(|s| s.store.as_ref())
            .into_iter()
            .flat_map(|b| b.iter())
    }

    /// Drains the retained events, leaving the handle recording afresh
    /// with the same mode and capacity.
    pub fn take_events(&mut self) -> Vec<Event> {
        match self.sink.as_mut() {
            Some(Sink {
                store: Some(buf), ..
            }) => {
                let capacity = buf.capacity;
                std::mem::replace(buf, EventBuffer::new(capacity)).into_vec()
            }
            _ => Vec::new(),
        }
    }

    /// Clears counts and retained events, keeping mode and capacity —
    /// used at the warm-up/measurement boundary.
    pub fn reset(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.seen = 0;
            if let Some(buf) = sink.store.as_mut() {
                *buf = EventBuffer::new(buf.capacity);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Track};

    fn ev(ts: u64) -> Event {
        Event {
            ts,
            dur: 1,
            track: Track::Thread(0),
            kind: EventKind::UserBurst { len: 10 },
        }
    }

    #[test]
    fn off_never_calls_the_closure() {
        let mut t = Telemetry::off();
        assert!(!t.is_enabled());
        assert_eq!(t.mode(), TelemetryMode::Off);
        t.emit_with(|| panic!("must not construct"));
        assert_eq!(t.seen(), 0);
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn noop_counts_but_stores_nothing() {
        let mut t = Telemetry::noop();
        assert!(t.is_enabled());
        assert_eq!(t.mode(), TelemetryMode::Noop);
        for i in 0..5 {
            t.emit_with(|| ev(i));
        }
        assert_eq!(t.seen(), 5);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events().count(), 0);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn ring_retains_newest_and_counts_evictions() {
        let mut t = Telemetry::buffered(3);
        assert_eq!(t.mode(), TelemetryMode::Full);
        for i in 0..5 {
            t.emit_with(|| ev(i));
        }
        assert_eq!(t.seen(), 5);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        let drained = t.take_events();
        assert_eq!(drained.len(), 3);
        assert_eq!(t.events().count(), 0);
        // The handle keeps recording after a drain.
        t.emit_with(|| ev(9));
        assert_eq!(t.events().count(), 1);
    }

    #[test]
    fn zero_capacity_buffer_drops_everything() {
        let mut b = EventBuffer::new(0);
        b.push(ev(1));
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 1);
    }

    #[test]
    fn reset_clears_counts_and_events() {
        let mut t = Telemetry::buffered(4);
        t.emit_with(|| ev(1));
        t.reset();
        assert_eq!(t.seen(), 0);
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.mode(), TelemetryMode::Full);
    }

    #[test]
    fn mode_round_trips_through_parse() {
        for mode in [TelemetryMode::Off, TelemetryMode::Noop, TelemetryMode::Full] {
            assert_eq!(TelemetryMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(TelemetryMode::parse("bogus"), None);
    }
}
