//! Crash-safe file output.
//!
//! Every results or telemetry file the workspace writes goes through
//! [`atomic_write`]: the bytes land in a temporary file in the target
//! directory, are fsynced, and are renamed over the destination, after
//! which the directory itself is fsynced. A reader (or a run that
//! crashed mid-write and was resumed) therefore sees either the
//! complete previous file or the complete new one — never a torn
//! prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// Writes `bytes` to `path` atomically (temp file + fsync + rename +
/// directory fsync), creating parent directories as needed.
///
/// The temporary file's name embeds the process id, so concurrent
/// writers in different processes cannot collide on the staging file;
/// concurrent writers to the *same* destination still last-write-win,
/// as with a plain write.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));

    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory.
        // Not every filesystem supports opening a directory for sync
        // (and none of the portable fallbacks do better), so treat a
        // failure to sync the directory as best-effort.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("osoffload-fsio-{tag}-{}", std::process::id()))
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = tmp_dir("basic");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two-longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two-longer");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmp_dir("clean");
        let _ = fs::remove_dir_all(&dir);
        atomic_write(&dir.join("a.txt"), b"x").unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.txt".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failing_write_cleans_up_its_temp_file() {
        let dir = tmp_dir("dirpath");
        let _ = fs::remove_dir_all(&dir);
        let target = dir.join("occupied");
        fs::create_dir_all(&target).unwrap();
        // Renaming a file over an existing directory fails; the staged
        // temp file must not be left behind.
        assert!(atomic_write(&target, b"x").is_err());
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["occupied".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
