//! `osoffload inspect` — run analytics over `results/` artefacts.
//!
//! Three subcommands over the runner's on-disk formats (see
//! TELEMETRY.md, "Profiling & inspection"):
//!
//! - `show` summarises a sweep archive or results journal row by row,
//!   and pretty-prints any other JSON document (fuzz repros, runner
//!   summaries, static tables).
//! - `find` locates points by their FNV-1a `config_digest` — the hash
//!   archived with failed rows — across any number of artefacts.
//! - `diff` emits report-level deltas (IPC, cycle-breakdown components,
//!   queue-delay percentiles, per-OS-core utilisation) between two
//!   runs — plus runner wall-clock and points-per-second deltas when
//!   both artefacts carry timing (canonical archives zero `wall_ms`, so
//!   canonical diffs stay byte-stable without these lines) — and with
//!   `--gate=PCT` exits non-zero when the headline deltas exceed the
//!   gate: a generalized perf gate.
//!
//! Everything here is read-only and deterministic: the same inputs
//! produce byte-identical output (`diff --canonical` additionally omits
//! the file paths so output is stable across directories).

use crate::args::InspectArgs;
use osoffload_runner::journal::{self, extract_config, fnv1a64};
use osoffload_runner::jsonv::{self, Value};
use osoffload_runner::Outcome;
use std::fmt::Write as _;
use std::path::Path;

/// Exit code when `--gate` is breached (distinct from usage/load errors).
const EXIT_GATE: i32 = 3;

/// One result row in inspector form, whichever artefact it came from.
struct Row {
    index: usize,
    id: String,
    status: String,
    /// `panic` message / timeout deadline for non-ok rows.
    detail: String,
    digest: String,
    config: String,
    report: Option<Value>,
    /// Runner wall-clock for the point; 0 in canonical artefacts.
    wall_ms: f64,
}

/// A loaded artefact.
enum Artefact {
    /// A sweep archive (`results/<plan>.json`).
    Sweep { summary: String, rows: Vec<Row> },
    /// A results journal (`--journal` / `--resume`).
    Journal { summary: String, rows: Vec<Row> },
    /// Any other JSON document (repro files, runner summaries, …).
    Other(Value),
}

impl Artefact {
    fn rows(&self) -> &[Row] {
        match self {
            Artefact::Sweep { rows, .. } | Artefact::Journal { rows, .. } => rows,
            Artefact::Other(_) => &[],
        }
    }
}

fn load(path: &str) -> Result<Artefact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
    if text.starts_with("{\"fnv\":\"") {
        // Envelope-format files are either runner journals or serve
        // caches; the header line says which.
        let first = text.lines().next().unwrap_or("");
        if journal::unwrap_envelope(first) == Some(osoffload_serve::cache::HEADER_BODY) {
            return load_serve_cache(path);
        }
        let loaded = journal::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        let rows = loaded
            .rows
            .iter()
            .map(|r| {
                let (status, detail) = match &r.outcome {
                    Outcome::Ok(_) => ("ok".to_string(), String::new()),
                    Outcome::Failed { panic, .. } => ("failed".to_string(), panic.clone()),
                    Outcome::TimedOut { deadline_ms, .. } => {
                        ("timeout".to_string(), format!("deadline {deadline_ms} ms"))
                    }
                };
                Row {
                    index: r.index,
                    id: r.id.clone(),
                    status,
                    detail,
                    digest: r.config_digest(),
                    config: r.config_json.clone(),
                    report: match &r.outcome {
                        Outcome::Ok(rep) => jsonv::parse(&rep.to_json()).ok(),
                        _ => None,
                    },
                    wall_ms: r.wall_ms,
                }
            })
            .collect();
        let summary = format!(
            "journal: experiment={} master_seed={} points={} ({} journaled)",
            loaded.header.experiment,
            loaded.header.master_seed,
            loaded.header.points,
            loaded.rows.len()
        );
        return Ok(Artefact::Journal { summary, rows });
    }
    let doc = jsonv::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
    if doc.get("rows").is_some() && doc.get("master_seed").is_some() {
        let rows = split_rows(&text)
            .into_iter()
            .filter_map(parse_archive_row)
            .collect::<Vec<Row>>();
        let num = |key: &str| {
            doc.get(key)
                .and_then(Value::as_u64)
                .map_or("?".to_string(), |n| n.to_string())
        };
        let summary = format!(
            "archive: experiment={} master_seed={} workers={} points={} failed={} timeouts={}",
            doc.get("experiment").and_then(Value::as_str).unwrap_or("?"),
            num("master_seed"),
            num("workers"),
            num("points"),
            num("failed"),
            num("timeouts"),
        );
        return Ok(Artefact::Sweep { summary, rows });
    }
    Ok(Artefact::Other(doc))
}

/// Loads a serve result cache (read-only — inspection never heals or
/// compacts the artefact) as one row per surviving entry, so `show`
/// summarises it and `find --digest` searches it like any journal.
fn load_serve_cache(path: &str) -> Result<Artefact, String> {
    let (entries, warnings) = osoffload_serve::cache::read_entries(Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    for warning in &warnings {
        eprintln!("warning: {warning}");
    }
    let rows = entries
        .iter()
        .map(|e| Row {
            index: e.row.index,
            id: e.row.id.clone(),
            status: "ok".to_string(),
            detail: String::new(),
            digest: e.digest.clone(),
            config: e.row.config_json.clone(),
            report: match &e.row.outcome {
                Outcome::Ok(rep) => jsonv::parse(&rep.to_json()).ok(),
                _ => None,
            },
            wall_ms: e.row.wall_ms,
        })
        .collect();
    let summary = format!(
        "serve cache: entries={}{}",
        entries.len(),
        if warnings.is_empty() {
            String::new()
        } else {
            format!(" ({} records skipped)", warnings.len())
        }
    );
    Ok(Artefact::Journal { summary, rows })
}

/// Slices the verbatim row objects out of an archive's `"rows":[…]`
/// array (string-aware, so braces inside panic messages cannot mislead
/// it). The verbatim text is what the archived `config_digest` hashes
/// over, so re-serialising through the parser would not do.
fn split_rows(text: &str) -> Vec<&str> {
    const MARKER: &str = "\"rows\":[";
    let Some(start) = text.find(MARKER) else {
        return Vec::new();
    };
    let bytes = text.as_bytes();
    let mut pos = start + MARKER.len();
    let mut rows = Vec::new();
    while pos < bytes.len() {
        match bytes[pos] {
            b'{' => {
                let Some(end) = skip_object(bytes, pos) else {
                    break;
                };
                rows.push(&text[pos..end]);
                pos = end;
            }
            b']' => break,
            _ => pos += 1,
        }
    }
    rows
}

/// The byte offset one past a balanced JSON object starting at `pos`.
fn skip_object(bytes: &[u8], mut pos: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut in_str = false;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' if in_str => pos += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(pos + 1);
                }
            }
            _ => {}
        }
        pos += 1;
    }
    None
}

fn parse_archive_row(text: &str) -> Option<Row> {
    let v = jsonv::parse(text).ok()?;
    let config = extract_config(text)?;
    let status = v.get("status").and_then(Value::as_str)?.to_string();
    let detail = match status.as_str() {
        "failed" => v
            .get("panic")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        "timeout" => format!(
            "deadline {} ms",
            v.get("deadline_ms").and_then(Value::as_u64).unwrap_or(0)
        ),
        _ => String::new(),
    };
    Some(Row {
        index: v.get("index").and_then(Value::as_usize)?,
        id: v.get("id").and_then(Value::as_str)?.to_string(),
        status,
        detail,
        digest: format!("{:016x}", fnv1a64(config.as_bytes())),
        config,
        report: v.get("report").cloned(),
        wall_ms: v.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0),
    })
}

/// Renders one summary line per row: index, id, status, digest, and the
/// headline report numbers for ok rows.
fn render_rows(out: &mut String, rows: &[Row]) {
    for r in rows {
        let _ = write!(
            out,
            "  [{:>3}] {:<28} {:<7} {}",
            r.index, r.id, r.status, r.digest
        );
        if let Some(rep) = &r.report {
            let f = |key: &str| rep.get(key).and_then(Value::as_f64).unwrap_or(0.0);
            let _ = write!(
                out,
                "  ipc={:.6} cycles={} offloads={}",
                f("throughput"),
                f("cycles"),
                f("offloads"),
            );
        } else if !r.detail.is_empty() {
            let _ = write!(out, "  {}", r.detail);
        }
        out.push('\n');
    }
}

fn render_show(path: &str) -> Result<String, String> {
    let mut out = String::new();
    match load(path)? {
        Artefact::Sweep { summary, rows } | Artefact::Journal { summary, rows } => {
            out.push_str(&summary);
            out.push('\n');
            render_rows(&mut out, &rows);
        }
        Artefact::Other(doc) => {
            pretty(&doc, 0, &mut out);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Pretty-prints a parsed JSON value with two-space indentation.
fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{}\"", json_escape(s));
        }
        Value::Arr(items) if items.is_empty() => out.push_str("[]"),
        Value::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Obj(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Obj(fields) => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                let _ = write!(out, "{pad}\"{}\": ", json_escape(k));
                pretty(val, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the matches for one digest across `paths`. Returns the text
/// and whether anything matched.
fn render_find(digest: &str, paths: &[String]) -> Result<(String, bool), String> {
    let mut out = String::new();
    let mut found = false;
    for path in paths {
        let artefact = load(path)?;
        for r in artefact.rows() {
            if r.digest == digest {
                found = true;
                let _ = writeln!(
                    out,
                    "{path}: [{}] {} {}{}\n  config: {}",
                    r.index,
                    r.id,
                    r.status,
                    if r.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" ({})", r.detail)
                    },
                    r.config
                );
            }
        }
    }
    if !found {
        let _ = writeln!(out, "digest {digest}: no matching point");
    }
    Ok((out, found))
}

/// A compared metric: label, baseline value, candidate value, and
/// whether deltas are expressed relative (percent) or absolute.
struct Metric {
    label: String,
    a: f64,
    b: f64,
    relative: bool,
}

/// The metrics `diff` compares, pulled from one pair of reports. Gate
/// decisions use only the first two (IPC and total cycles) — the
/// headline performance numbers.
fn metrics(a: &Value, b: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    let mut rel = |label: &str, x: Option<f64>, y: Option<f64>| {
        if let (Some(x), Some(y)) = (x, y) {
            out.push(Metric {
                label: label.to_string(),
                a: x,
                b: y,
                relative: true,
            });
        }
    };
    let f = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64);
    rel("ipc", f(a, "throughput"), f(b, "throughput"));
    rel("cycles", f(a, "cycles"), f(b, "cycles"));
    for key in [
        "base",
        "fetch",
        "data",
        "tlb",
        "branch",
        "migration",
        "queue_wait",
        "decision",
    ] {
        let sub = |v: &Value| v.get("cycle_breakdown").and_then(|c| f(c, key));
        rel(&format!("cycle_breakdown.{key}"), sub(a), sub(b));
    }
    for key in ["p50_delay", "p95_delay", "p99_delay"] {
        let sub = |v: &Value| v.get("queue").and_then(|q| f(q, key));
        rel(&format!("queue.{key}"), sub(a), sub(b));
    }
    let utils = |v: &Value| -> Vec<f64> {
        v.get("os_core_utilisation")
            .and_then(Value::as_arr)
            .map(|items| items.iter().filter_map(Value::as_f64).collect())
            .unwrap_or_default()
    };
    let (ua, ub) = (utils(a), utils(b));
    for i in 0..ua.len().max(ub.len()) {
        // Utilisation is already a fraction, so its delta is absolute.
        out.push(Metric {
            label: format!("os_core_utilisation[{i}]"),
            a: ua.get(i).copied().unwrap_or(0.0),
            b: ub.get(i).copied().unwrap_or(0.0),
            relative: false,
        });
    }
    out
}

/// Percentage change from `a` to `b`; infinite when appearing from zero.
fn pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (b - a) / a * 100.0
    }
}

/// Renders the report-level deltas between artefacts `a` and `b`.
/// Returns the text and the largest headline (IPC/cycles) percentage
/// delta, for the gate.
fn render_diff(a: &str, b: &str, canonical: bool) -> Result<(String, f64), String> {
    let (doc_a, doc_b) = (load(a)?, load(b)?);
    let mut out = String::new();
    if !canonical {
        let _ = writeln!(out, "diff: {a} vs {b}");
    }
    let ok_rows = |doc: &Artefact| -> Vec<(usize, String, Value)> {
        doc.rows()
            .iter()
            .filter_map(|r| Some((r.index, r.id.clone(), r.report.clone()?)))
            .collect()
    };
    let (rows_a, rows_b) = (ok_rows(&doc_a), ok_rows(&doc_b));
    let _ = writeln!(out, "rows: {} vs {} ok", rows_a.len(), rows_b.len());
    // Wall-clock / throughput deltas, only when both sides carry real
    // timing: canonical artefacts zero every row's wall_ms, so a
    // canonical diff emits no timing lines and stays byte-stable.
    let wall = |doc: &Artefact| -> f64 { doc.rows().iter().map(|r| r.wall_ms).sum() };
    let (wall_a, wall_b) = (wall(&doc_a), wall(&doc_b));
    if wall_a > 0.0 && wall_b > 0.0 {
        let _ = writeln!(
            out,
            "wall: {wall_a:.1} -> {wall_b:.1} ms  {:+.3}%",
            pct(wall_a, wall_b)
        );
        let rate = |rows: usize, wall: f64| rows as f64 * 1e3 / wall;
        let (rate_a, rate_b) = (rate(rows_a.len(), wall_a), rate(rows_b.len(), wall_b));
        let _ = writeln!(
            out,
            "throughput: {rate_a:.2} -> {rate_b:.2} points/sec  {:+.3}%",
            pct(rate_a, rate_b)
        );
    }
    let mut compared = 0usize;
    let mut max_headline = 0.0f64;
    for (index, id, rep_a) in &rows_a {
        let Some((_, id_b, rep_b)) = rows_b.iter().find(|(i, _, _)| i == index) else {
            let _ = writeln!(out, "row {index} {id}: only in baseline");
            continue;
        };
        compared += 1;
        let mut header = format!("row {index} {id}");
        if id != id_b {
            let _ = write!(header, " (vs {id_b})");
        }
        if rep_a == rep_b {
            let _ = writeln!(out, "{header}: identical");
            continue;
        }
        let all = metrics(rep_a, rep_b);
        let mut lines = String::new();
        for (slot, m) in all.iter().enumerate() {
            if m.a == m.b {
                continue;
            }
            if m.relative {
                let delta = pct(m.a, m.b);
                if slot < 2 {
                    max_headline = max_headline.max(delta.abs());
                }
                let _ = writeln!(
                    lines,
                    "  {:<26} {} -> {}  {:+.3}%",
                    m.label, m.a, m.b, delta
                );
            } else {
                let _ = writeln!(
                    lines,
                    "  {:<26} {:.6} -> {:.6}  {:+.6}",
                    m.label,
                    m.a,
                    m.b,
                    m.b - m.a
                );
            }
        }
        if lines.is_empty() {
            let _ = writeln!(out, "{header}: no tracked deltas (other fields differ)");
        } else {
            let _ = writeln!(out, "{header}:");
            out.push_str(&lines);
        }
    }
    for (index, id, _) in &rows_b {
        if !rows_a.iter().any(|(i, _, _)| i == index) {
            let _ = writeln!(out, "row {index} {id}: only in candidate");
        }
    }
    let _ = writeln!(
        out,
        "summary: {compared} row(s) compared, max headline delta {:+.3}%",
        max_headline
    );
    Ok((out, max_headline))
}

/// `osoffload inspect`: dispatches the subcommand, prints its output,
/// and maps the result to an exit code (0 ok / 1 error or no match /
/// 3 gate breached).
pub fn inspect(a: &InspectArgs) -> i32 {
    let fail = |e: String| {
        eprintln!("error: {e}");
        1
    };
    match a {
        InspectArgs::Show { path } => match render_show(path) {
            Ok(text) => {
                print!("{text}");
                0
            }
            Err(e) => fail(e),
        },
        InspectArgs::Find { digest, paths } => match render_find(digest, paths) {
            Ok((text, found)) => {
                print!("{text}");
                i32::from(!found)
            }
            Err(e) => fail(e),
        },
        InspectArgs::Diff {
            a,
            b,
            gate,
            canonical,
        } => match render_diff(a, b, *canonical) {
            Ok((text, max_headline)) => {
                print!("{text}");
                match gate {
                    Some(limit) if max_headline > *limit => {
                        println!("gate {limit}%: FAIL (max headline delta {max_headline:+.3}%)");
                        EXIT_GATE
                    }
                    Some(limit) => {
                        println!("gate {limit}%: ok");
                        0
                    }
                    None => 0,
                }
            }
            Err(e) => fail(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn show_summarises_the_mini_archive() {
        let text = render_show(&fixture("mini_base.json")).expect("loads");
        assert!(text.starts_with("archive: experiment=mini"), "{text}");
        assert!(text.contains("ipc="), "{text}");
        // One summary line per row.
        assert_eq!(text.lines().count(), 1 + 2, "{text}");
    }

    #[test]
    fn show_pretty_prints_generic_json() {
        let dir = std::env::temp_dir().join(format!("osoff-inspect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro.json");
        std::fs::write(&path, "{\"seed\":18446744073709551615,\"ops\":[1,2]}").unwrap();
        let text = render_show(path.to_str().unwrap()).expect("loads");
        assert!(text.contains("\"seed\": 18446744073709551615"), "{text}");
        assert!(text.contains("\"ops\": [\n"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn find_locates_points_by_digest_and_misses_cleanly() {
        let path = fixture("mini_base.json");
        // Digest of row 0, computed the same way the archive does.
        let text = std::fs::read_to_string(&path).unwrap();
        let row = split_rows(&text)[0];
        let config = extract_config(row).unwrap();
        let digest = format!("{:016x}", fnv1a64(config.as_bytes()));
        let (out, found) = render_find(&digest, std::slice::from_ref(&path)).unwrap();
        assert!(found, "{out}");
        assert!(out.contains("config: {"), "{out}");
        let (out, found) = render_find("0000000000000000", &[path]).unwrap();
        assert!(!found);
        assert!(out.contains("no matching point"), "{out}");
    }

    #[test]
    fn find_and_show_search_serve_caches_too() {
        use osoffload_runner::{record_plan, run_plan, RunnerOptions};
        use osoffload_serve::cache::ResultCache;
        use osoffload_serve::wire;
        use osoffload_system::experiments::{single_config, Scale};

        let dir = std::env::temp_dir().join(format!("osoff-inspect-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let scale = Scale {
            instructions: 30_000,
            warmup: 10_000,
            seed: 5,
            compute_profiles: 1,
        };
        let plan = record_plan("inspect-cache", scale.seed, |ev| {
            ev(single_config(
                osoffload_workload::Profile::apache(),
                osoffload_system::PolicyKind::Baseline,
                0,
                1,
                scale,
            ));
        });
        let sweep = run_plan(
            &plan,
            &RunnerOptions {
                quiet: true,
                canonical: true,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        );
        let row = &sweep.rows[0];
        let cache_path = dir.join("cache.wal");
        let mut cache = ResultCache::open(&cache_path, 0).unwrap();
        let wire_text = wire::config_to_json(&plan.points()[0].config).unwrap();
        assert!(cache.insert(&wire_text, row).unwrap());
        drop(cache);

        let path = cache_path.to_str().unwrap().to_string();
        let text = render_show(&path).expect("loads");
        assert!(text.starts_with("serve cache: entries=1"), "{text}");
        let (out, found) = render_find(&row.config_digest(), std::slice::from_ref(&path)).unwrap();
        assert!(found, "inspect find must search serve caches: {out}");
        assert!(out.contains(&row.id), "{out}");
        let (_, found) = render_find("0000000000000000", &[path]).unwrap();
        assert!(!found);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn self_diff_reports_identical_rows_and_passes_any_gate() {
        let path = fixture("mini_base.json");
        let (out, max_headline) = render_diff(&path, &path, true).unwrap();
        assert!(out.contains(": identical"), "{out}");
        assert_eq!(max_headline, 0.0, "{out}");
        let code = inspect(&InspectArgs::Diff {
            a: path.clone(),
            b: path,
            gate: Some(0.0),
            canonical: true,
        });
        assert_eq!(code, 0);
    }

    #[test]
    fn injected_slowdown_is_reported_and_trips_the_gate() {
        let a = fixture("mini_base.json");
        let b = fixture("mini_slow.json");
        let (out, max_headline) = render_diff(&a, &b, true).unwrap();
        // The fixture injects a 25% cycle slowdown into every row.
        assert!(
            (max_headline - 25.0).abs() < 0.5,
            "expected ~25% headline delta, got {max_headline} in {out}"
        );
        assert!(out.contains("cycles"), "{out}");
        assert!(out.contains("ipc"), "{out}");
        assert_eq!(
            inspect(&InspectArgs::Diff {
                a: a.clone(),
                b: b.clone(),
                gate: Some(20.0),
                canonical: true,
            }),
            EXIT_GATE,
            "25% slowdown must breach a 20% gate"
        );
        assert_eq!(
            inspect(&InspectArgs::Diff {
                a,
                b,
                gate: Some(30.0),
                canonical: true,
            }),
            0,
            "25% slowdown passes a 30% gate"
        );
    }

    #[test]
    fn canonical_diff_output_is_byte_stable() {
        let a = fixture("mini_base.json");
        let b = fixture("mini_slow.json");
        let (out1, _) = render_diff(&a, &b, true).unwrap();
        let (out2, _) = render_diff(&a, &b, true).unwrap();
        assert_eq!(out1, out2);
        // Copies in another directory render the same canonical bytes.
        let dir = std::env::temp_dir().join(format!("osoff-inspect-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (ca, cb) = (dir.join("a.json"), dir.join("b.json"));
        std::fs::copy(&a, &ca).unwrap();
        std::fs::copy(&b, &cb).unwrap();
        let (out3, _) = render_diff(ca.to_str().unwrap(), cb.to_str().unwrap(), true).unwrap();
        assert_eq!(out1, out3, "canonical output must not depend on paths");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_lists_breakdown_queue_and_utilisation_deltas() {
        let (out, _) =
            render_diff(&fixture("mini_base.json"), &fixture("mini_slow.json"), true).unwrap();
        assert!(out.contains("cycle_breakdown.base"), "{out}");
        assert!(out.contains("queue.p95_delay"), "{out}");
        assert!(out.contains("os_core_utilisation[0]"), "{out}");
    }

    #[test]
    fn timed_artefacts_get_wall_and_throughput_deltas() {
        // Canonical fixtures zero wall_ms: no timing lines, so the
        // byte-stability of canonical diffs is untouched.
        let (out, _) =
            render_diff(&fixture("mini_base.json"), &fixture("mini_slow.json"), true).unwrap();
        assert!(!out.contains("wall:"), "{out}");
        assert!(!out.contains("points/sec"), "{out}");
        // Rewrite the rows with real wall-clock on both sides: the diff
        // gains wall and points/sec lines.
        let dir = std::env::temp_dir().join(format!("osoff-inspect-wall-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let timed = |src: &str, ms: f64, name: &str| {
            let text = std::fs::read_to_string(fixture(src)).unwrap();
            let path = dir.join(name);
            let timed_text = text
                .replace("\"wall_ms\":0.000", &format!("\"wall_ms\":{ms:.3}"))
                .replace("\"wall_ms\":0.0,", &format!("\"wall_ms\":{ms:.1},"));
            std::fs::write(&path, timed_text).unwrap();
            path
        };
        let a = timed("mini_base.json", 50.0, "a.json");
        let b = timed("mini_slow.json", 25.0, "b.json");
        let (out, _) = render_diff(a.to_str().unwrap(), b.to_str().unwrap(), true).unwrap();
        assert!(out.contains("wall: 100.0 -> 50.0 ms  -50.000%"), "{out}");
        assert!(
            out.contains("throughput: 20.00 -> 40.00 points/sec  +100.000%"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_errors_surface_as_exit_code_one() {
        assert_eq!(
            inspect(&InspectArgs::Show {
                path: "no/such/file.json".to_string()
            }),
            1
        );
    }
}
