//! Hand-rolled argument parsing for the `osoffload` binary.
//!
//! Kept dependency-free on purpose: the parser is a couple of hundred
//! lines, fully unit-tested, and easier to audit than a derive macro.

use osoffload_system::PolicyKind;
use osoffload_workload::Profile;
use std::fmt;

/// Which subcommand was requested.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `osoffload run …` — one simulation, full report.
    Run(RunArgs),
    /// `osoffload compare …` — baseline vs SI vs DI vs HI.
    Compare(RunArgs),
    /// `osoffload sweep …` — threshold sweep for one workload/latency.
    Sweep(RunArgs),
    /// `osoffload trace …` — per-invocation CSV trace to stdout.
    Trace(RunArgs),
    /// `osoffload inspect …` — run analytics over `results/` artefacts.
    Inspect(InspectArgs),
    /// `osoffload serve …` — the cached experiment service.
    Serve(ServeArgs),
    /// `osoffload list` — available profiles and policies.
    List,
    /// `osoffload help` (or `-h`/`--help`).
    Help,
}

/// Parameters shared by the simulation subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Workload profile name.
    pub profile: String,
    /// Decision policy.
    pub policy: PolicyKind,
    /// One-way migration latency in cycles.
    pub latency: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Warm-up instructions.
    pub warmup: u64,
    /// Master seed.
    pub seed: u64,
    /// User cores.
    pub cores: usize,
    /// Enable the §III-B dynamic threshold estimator.
    pub tuner: bool,
    /// RPC transport instead of thread migration.
    pub rpc: bool,
    /// Resource-adaptation slowdown in milli-units (no OS core).
    pub adapt_milli: Option<u64>,
    /// Score energy/EDP after the run.
    pub energy: bool,
    /// Emit the report as JSON instead of prose (`run` only).
    pub json: bool,
    /// Capture full telemetry (spans + epoch metrics) during the run.
    pub telemetry: bool,
    /// Directory for telemetry files (implies `telemetry`).
    pub trace_out: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            profile: "apache".to_string(),
            policy: PolicyKind::HardwarePredictor { threshold: 500 },
            latency: 1_000,
            instructions: 1_000_000,
            warmup: 500_000,
            seed: 42,
            cores: 1,
            tuner: false,
            rpc: false,
            adapt_milli: None,
            energy: false,
            json: false,
            telemetry: false,
            trace_out: None,
        }
    }
}

/// What `osoffload inspect` should do.
#[derive(Debug, Clone, PartialEq)]
pub enum InspectArgs {
    /// `inspect show <file>` — summarise an archive or journal, or
    /// pretty-print any other JSON document (repro files, summaries).
    Show {
        /// Path of the artefact.
        path: String,
    },
    /// `inspect find --digest=<hex> <paths…>` — locate the points whose
    /// configuration hashes to the digest.
    Find {
        /// 16-hex-digit FNV-1a configuration digest.
        digest: String,
        /// Archives/journals to search.
        paths: Vec<String>,
    },
    /// `inspect diff <A> <B>` — report-level deltas between two runs,
    /// with an optional perf gate.
    Diff {
        /// Baseline artefact.
        a: String,
        /// Candidate artefact.
        b: String,
        /// Fail (exit 3) when the headline deltas exceed this percentage.
        gate: Option<f64>,
        /// Omit file paths from the output so it is byte-stable across
        /// directories.
        canonical: bool,
    },
}

/// What `osoffload serve` should do.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeArgs {
    /// `serve start …` — boot the daemon (foreground).
    Start {
        /// Listening port (`0` = ephemeral; the daemon prints the bound
        /// address).
        port: u16,
        /// Cache WAL path.
        cache: String,
        /// Output directory for archives and metrics.
        out: String,
        /// Worker threads per sweep (`0` = auto).
        workers: usize,
        /// Lane-pack width (`0` = auto).
        lanes: usize,
        /// Retries per failing point.
        retries: u32,
        /// Maximum cached entries (`0` = unbounded).
        cache_max: usize,
        /// Cache entry TTL in virtual seconds (`0` = no age limit).
        cache_ttl_secs: u64,
        /// Concurrent submissions executed at once.
        submit_slots: usize,
        /// Submissions allowed to queue behind the running ones.
        admit_queue: usize,
        /// Connection-handling threads (`0` = auto).
        conn_workers: usize,
        /// Socket read timeout in milliseconds (positive).
        read_timeout_ms: u64,
        /// Socket write timeout in milliseconds (positive).
        write_timeout_ms: u64,
        /// Per-request deadline in milliseconds (`0` = none).
        request_deadline_ms: u64,
        /// Maximum request line length in bytes (positive).
        max_line_bytes: usize,
        /// Fault-injection seed (chaos testing).
        inject_faults: Option<u64>,
        /// Suppress stderr chatter.
        quiet: bool,
    },
    /// `serve submit …` — submit the fig4 sweep and stream progress.
    Submit {
        /// Daemon port.
        port: u16,
        /// fig4 scale: `quick`, `full`, or `paper`.
        fig4: String,
        /// Exit 4 unless every point was served from cache.
        require_cached: bool,
        /// Retries of retryable refusals (`overloaded`/`draining`) and
        /// transport failures.
        retries: u32,
        /// Base backoff between retries in milliseconds.
        backoff_ms: u64,
        /// Suppress per-point progress lines.
        quiet: bool,
    },
    /// `serve proxy …` — run the chaos fault-injection proxy in the
    /// foreground (CI harness; see `ROBUSTNESS.md`).
    Proxy {
        /// Proxy listening port (`0` = ephemeral; printed on boot).
        port: u16,
        /// Daemon port the proxy forwards to.
        upstream: u16,
        /// Fault-plan master seed.
        seed: u64,
        /// Per-direction fault probability, in percent.
        fault_pct: u32,
        /// Fault log file (one line per injected fault).
        log: Option<String>,
    },
    /// `serve ping` — liveness check.
    Ping {
        /// Daemon port.
        port: u16,
    },
    /// `serve stats` — cache/counter totals.
    Stats {
        /// Daemon port.
        port: u16,
    },
    /// `serve stop` — ask the daemon to shut down.
    Stop {
        /// Daemon port.
        port: u16,
    },
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

fn err(msg: impl Into<String>) -> ParseArgsError {
    ParseArgsError(msg.into())
}

fn parse_u64(flag: &str, v: Option<&str>) -> Result<u64, ParseArgsError> {
    let v = v.ok_or_else(|| err(format!("{flag} needs a value")))?;
    v.replace('_', "")
        .parse()
        .map_err(|_| err(format!("{flag}: '{v}' is not a number")))
}

/// Parses the policy spec: `baseline`, `always`, `hi[:N]`, `hi-dm[:N]`,
/// `di[:N[:COST]]`, `si[:STUB]`, `oracle[:N]`.
pub fn parse_policy(spec: &str) -> Result<PolicyKind, ParseArgsError> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let p1 = parts.next();
    let p2 = parts.next();
    if parts.next().is_some() {
        return Err(err(format!("policy '{spec}': too many ':' fields")));
    }
    let num = |s: Option<&str>, default: u64| -> Result<u64, ParseArgsError> {
        match s {
            None => Ok(default),
            Some(v) => v
                .replace('_', "")
                .parse()
                .map_err(|_| err(format!("policy '{spec}': '{v}' is not a number"))),
        }
    };
    match name {
        "baseline" | "none" => Ok(PolicyKind::Baseline),
        "always" => Ok(PolicyKind::AlwaysOffload),
        "hi" => Ok(PolicyKind::HardwarePredictor { threshold: num(p1, 500)? }),
        "hi-dm" => Ok(PolicyKind::HardwarePredictorDirectMapped { threshold: num(p1, 500)? }),
        "hi-sa" => Ok(PolicyKind::HardwarePredictorSetAssoc {
            threshold: num(p1, 500)?,
            sets: 64,
            ways: num(p2, 4)? as usize,
        }),
        "hi-global" => Ok(PolicyKind::HardwarePredictorGlobalOnly { threshold: num(p1, 500)? }),
        "hi-lastvalue" => Ok(PolicyKind::HardwarePredictorLastValue { threshold: num(p1, 500)? }),
        "di" => Ok(PolicyKind::DynamicInstrumentation {
            threshold: num(p1, 500)?,
            cost: num(p2, 120)?,
        }),
        "si" => Ok(PolicyKind::StaticInstrumentation { stub_cost: num(p1, 25)? }),
        "oracle" => Ok(PolicyKind::Oracle { threshold: num(p1, 500)? }),
        other => Err(err(format!(
            "unknown policy '{other}' (expected baseline|always|hi|hi-dm|hi-sa|hi-global|hi-lastvalue|di|si|oracle)"
        ))),
    }
}

fn parse_inspect_args(args: &[String]) -> Result<InspectArgs, ParseArgsError> {
    match args.first().map(String::as_str) {
        Some("show") => match args.get(1) {
            Some(path) if args.len() == 2 => Ok(InspectArgs::Show { path: path.clone() }),
            _ => Err(err("usage: inspect show <file>")),
        },
        Some("find") => {
            let mut digest = None;
            let mut paths = Vec::new();
            for arg in &args[1..] {
                if let Some(v) = arg.strip_prefix("--digest=") {
                    if v.len() != 16 || !v.chars().all(|c| c.is_ascii_hexdigit()) {
                        return Err(err(format!("--digest: '{v}' is not a 16-hex-digit digest")));
                    }
                    digest = Some(v.to_ascii_lowercase());
                } else if arg.starts_with("--") {
                    return Err(err(format!("inspect find: unknown flag '{arg}'")));
                } else {
                    paths.push(arg.clone());
                }
            }
            let digest = digest.ok_or_else(|| err("inspect find needs --digest=<hex>"))?;
            if paths.is_empty() {
                return Err(err("inspect find needs at least one archive/journal path"));
            }
            Ok(InspectArgs::Find { digest, paths })
        }
        Some("diff") => {
            let mut gate = None;
            let mut canonical = false;
            let mut paths = Vec::new();
            for arg in &args[1..] {
                if let Some(v) = arg.strip_prefix("--gate=") {
                    let pct: f64 = v
                        .parse()
                        .map_err(|_| err(format!("--gate: '{v}' is not a number")))?;
                    if !pct.is_finite() || pct < 0.0 {
                        return Err(err("--gate must be a non-negative percentage"));
                    }
                    gate = Some(pct);
                } else if arg == "--canonical" {
                    canonical = true;
                } else if arg.starts_with("--") {
                    return Err(err(format!("inspect diff: unknown flag '{arg}'")));
                } else {
                    paths.push(arg.clone());
                }
            }
            match <[String; 2]>::try_from(paths) {
                Ok([a, b]) => Ok(InspectArgs::Diff {
                    a,
                    b,
                    gate,
                    canonical,
                }),
                Err(_) => Err(err(
                    "usage: inspect diff <A> <B> [--gate=PCT] [--canonical]",
                )),
            }
        }
        Some(other) => Err(err(format!(
            "unknown inspect subcommand '{other}' (expected show|find|diff)"
        ))),
        None => Err(err("usage: inspect <show|find|diff> …")),
    }
}

fn parse_eq_u64(arg: &str, flag: &str) -> Result<u64, ParseArgsError> {
    let v = arg
        .strip_prefix(flag)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| err(format!("{flag} needs =VALUE")))?;
    v.replace('_', "")
        .parse()
        .map_err(|_| err(format!("{flag}: '{v}' is not a number")))
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, ParseArgsError> {
    let port_flag = |arg: &str| -> Result<u16, ParseArgsError> {
        let n = parse_eq_u64(arg, "--port")?;
        u16::try_from(n).map_err(|_| err(format!("--port: {n} is not a TCP port")))
    };
    // Flags that configure a duration or size where `0` would disable
    // the protection entirely are rejected at parse time.
    let positive = |arg: &str, flag: &str| -> Result<u64, ParseArgsError> {
        let n = parse_eq_u64(arg, flag)?;
        if n == 0 {
            return Err(err(format!("{flag} must be positive")));
        }
        Ok(n)
    };
    match args.first().map(String::as_str) {
        Some("start") => {
            let mut port = 7411u16;
            let mut cache = "results/serve/cache.wal".to_string();
            let mut out = "results/serve".to_string();
            let (mut workers, mut lanes, mut retries, mut cache_max) =
                (0usize, 0usize, 0u32, 0usize);
            let mut cache_ttl_secs = 0u64;
            let (mut submit_slots, mut admit_queue, mut conn_workers) = (2usize, 4usize, 0usize);
            let (mut read_timeout_ms, mut write_timeout_ms) = (60_000u64, 60_000u64);
            let mut request_deadline_ms = 0u64;
            let mut max_line_bytes = 1usize << 20;
            let mut inject_faults = None;
            let mut quiet = false;
            for arg in &args[1..] {
                if arg.starts_with("--port") {
                    port = port_flag(arg)?;
                } else if let Some(v) = arg.strip_prefix("--cache=") {
                    cache = v.to_string();
                } else if let Some(v) = arg.strip_prefix("--out=") {
                    out = v.to_string();
                } else if arg.starts_with("--workers") {
                    workers = parse_eq_u64(arg, "--workers")? as usize;
                } else if arg.starts_with("--lanes") {
                    lanes = parse_eq_u64(arg, "--lanes")? as usize;
                } else if arg.starts_with("--retries") {
                    retries = parse_eq_u64(arg, "--retries")? as u32;
                } else if arg.starts_with("--cache-max") {
                    cache_max = parse_eq_u64(arg, "--cache-max")? as usize;
                } else if arg.starts_with("--cache-ttl-secs") {
                    cache_ttl_secs = parse_eq_u64(arg, "--cache-ttl-secs")?;
                } else if arg.starts_with("--submit-slots") {
                    submit_slots = positive(arg, "--submit-slots")? as usize;
                } else if arg.starts_with("--admit-queue") {
                    admit_queue = parse_eq_u64(arg, "--admit-queue")? as usize;
                } else if arg.starts_with("--conn-workers") {
                    conn_workers = parse_eq_u64(arg, "--conn-workers")? as usize;
                } else if arg.starts_with("--read-timeout-ms") {
                    read_timeout_ms = positive(arg, "--read-timeout-ms")?;
                } else if arg.starts_with("--write-timeout-ms") {
                    write_timeout_ms = positive(arg, "--write-timeout-ms")?;
                } else if arg.starts_with("--request-deadline-ms") {
                    request_deadline_ms = parse_eq_u64(arg, "--request-deadline-ms")?;
                } else if arg.starts_with("--max-line-bytes") {
                    max_line_bytes = positive(arg, "--max-line-bytes")? as usize;
                } else if arg.starts_with("--inject-faults") {
                    inject_faults = Some(parse_eq_u64(arg, "--inject-faults")?);
                } else if arg == "--quiet" {
                    quiet = true;
                } else {
                    return Err(err(format!("serve start: unknown flag '{arg}'")));
                }
            }
            Ok(ServeArgs::Start {
                port,
                cache,
                out,
                workers,
                lanes,
                retries,
                cache_max,
                cache_ttl_secs,
                submit_slots,
                admit_queue,
                conn_workers,
                read_timeout_ms,
                write_timeout_ms,
                request_deadline_ms,
                max_line_bytes,
                inject_faults,
                quiet,
            })
        }
        Some("submit") => {
            let mut port = 7411u16;
            let mut fig4 = None;
            let mut require_cached = false;
            let mut retries = 5u32;
            let mut backoff_ms = 50u64;
            let mut quiet = false;
            for arg in &args[1..] {
                if arg.starts_with("--port") {
                    port = port_flag(arg)?;
                } else if let Some(v) = arg.strip_prefix("--fig4=") {
                    if !matches!(v, "quick" | "full" | "paper") {
                        return Err(err(format!("--fig4: '{v}' is not quick|full|paper")));
                    }
                    fig4 = Some(v.to_string());
                } else if arg == "--require-cached" {
                    require_cached = true;
                } else if arg.starts_with("--retries") {
                    retries = parse_eq_u64(arg, "--retries")? as u32;
                } else if arg.starts_with("--backoff-ms") {
                    backoff_ms = positive(arg, "--backoff-ms")?;
                } else if arg == "--quiet" {
                    quiet = true;
                } else {
                    return Err(err(format!("serve submit: unknown flag '{arg}'")));
                }
            }
            Ok(ServeArgs::Submit {
                port,
                fig4: fig4.ok_or_else(|| err("serve submit needs --fig4=quick|full|paper"))?,
                require_cached,
                retries,
                backoff_ms,
                quiet,
            })
        }
        Some("proxy") => {
            let mut port = 0u16;
            let mut upstream = None;
            let mut seed = 0xC4A05u64;
            let mut fault_pct = 50u32;
            let mut log = None;
            for arg in &args[1..] {
                if arg.starts_with("--port") {
                    port = port_flag(arg)?;
                } else if arg.starts_with("--upstream") {
                    let n = parse_eq_u64(arg, "--upstream")?;
                    upstream = Some(
                        u16::try_from(n)
                            .map_err(|_| err(format!("--upstream: {n} is not a TCP port")))?,
                    );
                } else if arg.starts_with("--seed") {
                    seed = parse_eq_u64(arg, "--seed")?;
                } else if arg.starts_with("--fault-pct") {
                    let n = parse_eq_u64(arg, "--fault-pct")?;
                    if n > 100 {
                        return Err(err(format!("--fault-pct: {n} is not a percentage")));
                    }
                    fault_pct = n as u32;
                } else if let Some(v) = arg.strip_prefix("--log=") {
                    log = Some(v.to_string());
                } else {
                    return Err(err(format!("serve proxy: unknown flag '{arg}'")));
                }
            }
            Ok(ServeArgs::Proxy {
                port,
                upstream: upstream.ok_or_else(|| err("serve proxy needs --upstream=PORT"))?,
                seed,
                fault_pct,
                log,
            })
        }
        Some(op @ ("ping" | "stats" | "stop")) => {
            let mut port = 7411u16;
            for arg in &args[1..] {
                if arg.starts_with("--port") {
                    port = port_flag(arg)?;
                } else {
                    return Err(err(format!("serve {op}: unknown flag '{arg}'")));
                }
            }
            Ok(match op {
                "ping" => ServeArgs::Ping { port },
                "stats" => ServeArgs::Stats { port },
                _ => ServeArgs::Stop { port },
            })
        }
        Some(other) => Err(err(format!(
            "unknown serve subcommand '{other}' (expected start|submit|ping|stats|stop)"
        ))),
        None => Err(err("usage: serve <start|submit|ping|stats|stop> …")),
    }
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, ParseArgsError> {
    let mut out = RunArgs::default();
    let mut explicit_warmup = false;
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(flag) = it.next() {
        match flag {
            "--profile" | "-p" => {
                let v = it.next().ok_or_else(|| err("--profile needs a value"))?;
                if Profile::by_name(v).is_none() {
                    let names: Vec<&str> = Profile::all_server()
                        .iter()
                        .chain(Profile::all_compute().iter())
                        .map(|p| p.name)
                        .collect();
                    return Err(err(format!(
                        "unknown profile '{v}' (available: {})",
                        names.join(", ")
                    )));
                }
                out.profile = v.to_string();
            }
            "--policy" => {
                let v = it.next().ok_or_else(|| err("--policy needs a value"))?;
                out.policy = parse_policy(v)?;
            }
            "--latency" | "-l" => out.latency = parse_u64(flag, it.next())?,
            "--instructions" | "-n" => out.instructions = parse_u64(flag, it.next())?,
            "--warmup" => {
                out.warmup = parse_u64(flag, it.next())?;
                explicit_warmup = true;
            }
            "--seed" => out.seed = parse_u64(flag, it.next())?,
            "--cores" => out.cores = parse_u64(flag, it.next())? as usize,
            "--tuner" => out.tuner = true,
            "--rpc" => out.rpc = true,
            "--adapt" => out.adapt_milli = Some(parse_u64(flag, it.next())?),
            "--energy" => out.energy = true,
            "--json" => out.json = true,
            "--telemetry" => out.telemetry = true,
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--trace-out needs a directory"))?;
                out.trace_out = Some(v.to_string());
                out.telemetry = true;
            }
            other => return Err(err(format!("unknown flag '{other}'"))),
        }
    }
    if !explicit_warmup {
        out.warmup = out.instructions / 2;
    }
    if out.instructions == 0 {
        return Err(err("--instructions must be positive"));
    }
    if out.cores == 0 {
        return Err(err("--cores must be positive"));
    }
    Ok(out)
}

/// Parses the whole command line (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("-h") | Some("--help") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => Ok(Command::Run(parse_run_args(&args[1..])?)),
        Some("compare") => Ok(Command::Compare(parse_run_args(&args[1..])?)),
        Some("sweep") => Ok(Command::Sweep(parse_run_args(&args[1..])?)),
        Some("trace") => Ok(Command::Trace(parse_run_args(&args[1..])?)),
        Some("inspect") => Ok(Command::Inspect(parse_inspect_args(&args[1..])?)),
        Some("serve") => Ok(Command::Serve(parse_serve_args(&args[1..])?)),
        Some(other) => Err(err(format!(
            "unknown subcommand '{other}' (expected run|compare|sweep|trace|inspect|serve|list|help)"
        ))),
    }
}

/// The `help` text.
pub const USAGE: &str = "\
osoffload — selective off-loading of OS functionality (Nellans et al., WIOSCA 2010)

USAGE:
    osoffload <run|compare|sweep|trace|inspect|serve|list|help> [flags]

SUBCOMMANDS:
    run       simulate one configuration and print the full report
    compare   baseline vs SI vs DI vs HI on one workload
    sweep     sweep the off-load threshold N for one workload/latency
    trace     per-invocation CSV trace to stdout (summary on stderr)
    inspect   analytics over results/ artefacts (archives, journals)
    serve     cached experiment service (daemon + client; see SERVING.md)
    list      available workload profiles and policy specs
    help      this text

FLAGS (run/compare/sweep):
    -p, --profile <name>        workload profile        [apache]
        --policy <spec>         decision policy         [hi:500]
                                  baseline | always | hi[:N] | hi-dm[:N] |
                                  hi-sa[:N[:WAYS]] | hi-global[:N] | hi-lastvalue[:N] |
                                  di[:N[:COST]] | si[:STUB] | oracle[:N]
    -l, --latency <cycles>      one-way migration cost  [1000]
    -n, --instructions <count>  measured instructions   [1000000]
        --warmup <count>        warm-up instructions    [instructions/2]
        --seed <n>              master seed             [42]
        --cores <n>             user cores              [1]
        --tuner                 enable the dynamic-N estimator (paper §III-B)
        --rpc                   RPC transport instead of thread migration
        --adapt <milli>         resource adaptation: run long OS sequences
                                locally, throttled by milli/1000 (no OS core)
        --energy                also score energy and EDP
        --json                  emit the report as JSON (run only)
        --telemetry             capture spans + epoch metrics; write a Chrome
                                trace and metric time series (see TELEMETRY.md)
        --trace-out <dir>       telemetry output directory [results/telemetry]
                                (implies --telemetry)

INSPECT SUBCOMMANDS (see TELEMETRY.md, \"Profiling & inspection\"):
    inspect show <file>                     summarise an archive or journal;
                                            pretty-print any other JSON
    inspect find --digest=<hex> <paths...>  locate points by config digest
    inspect diff <A> <B> [--gate=PCT]       report-level deltas (IPC, cycle
                [--canonical]               breakdown, queue percentiles,
                                            per-OS-core utilisation); with
                                            --gate, exit 3 when |dIPC| or
                                            |dcycles| exceeds PCT percent;
                                            --canonical omits file paths so
                                            output is byte-stable

SERVE SUBCOMMANDS (see SERVING.md):
    serve start [--port=N] [--cache=FILE] [--out=DIR] [--workers=N]
                [--lanes=N] [--retries=N] [--cache-max=N]
                [--cache-ttl-secs=N] [--submit-slots=N] [--admit-queue=N]
                [--conn-workers=N] [--read-timeout-ms=N]
                [--write-timeout-ms=N] [--request-deadline-ms=N]
                [--max-line-bytes=N] [--inject-faults=SEED] [--quiet]
                                            boot the daemon in the foreground
                                            (port 7411; 0 = ephemeral);
                                            --submit-slots concurrent sweeps
                                            with --admit-queue waiters, the
                                            rest shed with 'overloaded'
                                            (see SERVING.md, overload & drain)
    serve submit --fig4=quick|full|paper [--port=N] [--require-cached]
                [--retries=N] [--backoff-ms=N] [--quiet]
                                            submit the fig4 sweep, stream
                                            per-point progress; retries
                                            overloaded/draining/transport
                                            failures with jittered backoff;
                                            with --require-cached, exit 4
                                            unless every point came from cache
    serve proxy --upstream=PORT [--port=N] [--seed=N] [--fault-pct=N]
                [--log=FILE]                deterministic fault-injecting TCP
                                            proxy for chaos testing: torn
                                            writes, stalls, disconnects at
                                            seeded byte offsets
    serve ping|stats|stop [--port=N]        liveness / totals / shutdown
                                            (stop drains gracefully)

EXAMPLES:
    osoffload run -p apache --policy hi:500 -l 1000 --energy
    osoffload run -p apache --telemetry --trace-out results/telemetry
    osoffload compare -p specjbb2005 -l 5000
    osoffload sweep -p derby -l 100 -n 2000000
    osoffload inspect show results/fig4.json
    osoffload inspect diff results/fig4.json results/fig4-new.json --gate=5
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&argv("--help")), Ok(Command::Help));
        assert_eq!(parse(&argv("help")), Ok(Command::Help));
    }

    #[test]
    fn list_parses() {
        assert_eq!(parse(&argv("list")), Ok(Command::List));
    }

    #[test]
    fn run_defaults() {
        let Command::Run(a) = parse(&argv("run")).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(a.profile, "apache");
        assert_eq!(a.policy, PolicyKind::HardwarePredictor { threshold: 500 });
        assert_eq!(a.warmup, a.instructions / 2);
    }

    #[test]
    fn run_full_flag_set() {
        let cmd = parse(&argv(
            "run -p derby --policy di:1000:200 -l 5000 -n 500000 --warmup 100000 \
             --seed 7 --cores 2 --tuner --rpc --energy",
        ))
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("expected run")
        };
        assert_eq!(a.profile, "derby");
        assert_eq!(
            a.policy,
            PolicyKind::DynamicInstrumentation {
                threshold: 1_000,
                cost: 200
            }
        );
        assert_eq!(a.latency, 5_000);
        assert_eq!(a.instructions, 500_000);
        assert_eq!(a.warmup, 100_000);
        assert_eq!(a.seed, 7);
        assert_eq!(a.cores, 2);
        assert!(a.tuner && a.rpc && a.energy);
    }

    #[test]
    fn json_flag() {
        let Command::Run(a) = parse(&argv("run --json")).unwrap() else {
            panic!()
        };
        assert!(a.json);
    }

    #[test]
    fn telemetry_flags() {
        let Command::Run(a) = parse(&argv("run --telemetry")).unwrap() else {
            panic!()
        };
        assert!(a.telemetry);
        assert_eq!(a.trace_out, None);
        let Command::Run(a) = parse(&argv("run --trace-out out/t")).unwrap() else {
            panic!()
        };
        assert!(a.telemetry, "--trace-out implies --telemetry");
        assert_eq!(a.trace_out.as_deref(), Some("out/t"));
        assert!(parse(&argv("run --trace-out")).is_err());
    }

    #[test]
    fn adapt_flag() {
        let Command::Run(a) = parse(&argv("run --adapt 1250")).unwrap() else {
            panic!()
        };
        assert_eq!(a.adapt_milli, Some(1_250));
    }

    #[test]
    fn numbers_accept_underscores() {
        let Command::Run(a) = parse(&argv("run -n 2_000_000")).unwrap() else {
            panic!()
        };
        assert_eq!(a.instructions, 2_000_000);
    }

    #[test]
    fn policy_specs() {
        assert_eq!(parse_policy("baseline"), Ok(PolicyKind::Baseline));
        assert_eq!(parse_policy("always"), Ok(PolicyKind::AlwaysOffload));
        assert_eq!(
            parse_policy("hi"),
            Ok(PolicyKind::HardwarePredictor { threshold: 500 })
        );
        assert_eq!(
            parse_policy("hi:10_000"),
            Ok(PolicyKind::HardwarePredictor { threshold: 10_000 })
        );
        assert_eq!(
            parse_policy("hi-dm:100"),
            Ok(PolicyKind::HardwarePredictorDirectMapped { threshold: 100 })
        );
        assert_eq!(
            parse_policy("si:30"),
            Ok(PolicyKind::StaticInstrumentation { stub_cost: 30 })
        );
        assert_eq!(
            parse_policy("oracle:900"),
            Ok(PolicyKind::Oracle { threshold: 900 })
        );
        assert!(parse_policy("bogus").is_err());
        assert!(parse_policy("hi:x").is_err());
        assert!(parse_policy("di:1:2:3").is_err());
    }

    #[test]
    fn unknown_profile_lists_alternatives() {
        let e = parse(&argv("run -p nginx")).unwrap_err();
        assert!(e.0.contains("apache"), "{e}");
        assert!(e.0.contains("canneal"), "{e}");
    }

    #[test]
    fn unknown_flag_and_subcommand_error() {
        assert!(parse(&argv("run --bogus")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run -n 0")).is_err());
        assert!(parse(&argv("run --cores 0")).is_err());
    }

    #[test]
    fn serve_args_parse() {
        let cmd = parse(&argv(
            "serve start --port=0 --cache=c.wal --out=o --workers=2 --lanes=1 \
             --retries=3 --cache-max=10 --cache-ttl-secs=3600 --submit-slots=3 \
             --admit-queue=8 --conn-workers=12 --read-timeout-ms=5000 \
             --write-timeout-ms=4000 --request-deadline-ms=30000 \
             --max-line-bytes=65536 --inject-faults=7 --quiet",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs::Start {
                port: 0,
                cache: "c.wal".into(),
                out: "o".into(),
                workers: 2,
                lanes: 1,
                retries: 3,
                cache_max: 10,
                cache_ttl_secs: 3600,
                submit_slots: 3,
                admit_queue: 8,
                conn_workers: 12,
                read_timeout_ms: 5000,
                write_timeout_ms: 4000,
                request_deadline_ms: 30000,
                max_line_bytes: 65536,
                inject_faults: Some(7),
                quiet: true,
            })
        );
        let cmd = parse(&argv(
            "serve submit --fig4=quick --port=7500 --require-cached --retries=2 --backoff-ms=10",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs::Submit {
                port: 7500,
                fig4: "quick".into(),
                require_cached: true,
                retries: 2,
                backoff_ms: 10,
                quiet: false,
            })
        );
        let cmd = parse(&argv(
            "serve proxy --upstream=7411 --port=7500 --seed=9 --fault-pct=30 --log=f.log",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs::Proxy {
                port: 7500,
                upstream: 7411,
                seed: 9,
                fault_pct: 30,
                log: Some("f.log".into()),
            })
        );
        assert_eq!(
            parse(&argv("serve ping")).unwrap(),
            Command::Serve(ServeArgs::Ping { port: 7411 })
        );
        assert!(parse(&argv("serve submit")).is_err(), "submit needs --fig4");
        assert!(parse(&argv("serve submit --fig4=huge")).is_err());
        assert!(parse(&argv("serve start --port=70000")).is_err());
        assert!(parse(&argv("serve frobnicate")).is_err());
        // Zero would disable the corresponding protection entirely —
        // rejected at parse time, not silently accepted.
        assert!(parse(&argv("serve start --submit-slots=0")).is_err());
        assert!(parse(&argv("serve start --read-timeout-ms=0")).is_err());
        assert!(parse(&argv("serve start --write-timeout-ms=0")).is_err());
        assert!(parse(&argv("serve start --max-line-bytes=0")).is_err());
        assert!(parse(&argv("serve submit --fig4=quick --backoff-ms=0")).is_err());
        assert!(parse(&argv("serve proxy")).is_err(), "proxy needs upstream");
        assert!(parse(&argv("serve proxy --upstream=7411 --fault-pct=101")).is_err());
    }

    #[test]
    fn compare_and_sweep_share_parsing() {
        assert!(matches!(
            parse(&argv("compare -p apache")).unwrap(),
            Command::Compare(_)
        ));
        assert!(matches!(
            parse(&argv("sweep -l 100")).unwrap(),
            Command::Sweep(_)
        ));
        assert!(matches!(
            parse(&argv("trace -p derby")).unwrap(),
            Command::Trace(_)
        ));
    }
}
