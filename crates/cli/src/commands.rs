//! Subcommand implementations for the `osoffload` binary.

use crate::args::RunArgs;
use osoffload_core::TunerConfig;
use osoffload_energy::{evaluate, EnergyParams};
use osoffload_obs::TelemetryMode;
use osoffload_system::{OffloadMechanism, PolicyKind, SimReport, Simulation, SystemConfig};
use osoffload_workload::Profile;

fn build_config(a: &RunArgs, policy: PolicyKind) -> SystemConfig {
    let profile = Profile::by_name(&a.profile).expect("validated by the parser");
    let mut b = SystemConfig::builder()
        .profile(profile)
        .policy(policy)
        .migration_latency(a.latency)
        .user_cores(a.cores)
        .instructions(a.instructions)
        .warmup(a.warmup)
        .seed(a.seed);
    if a.rpc {
        b = b.mechanism(OffloadMechanism::RemoteCall);
    }
    if let Some(m) = a.adapt_milli {
        b = b.resource_adaptation(m);
    }
    if a.tuner {
        // Scale the paper's 25 M-instruction epochs to the run length so
        // the estimator completes several rounds.
        let divisor = (25_000_000 / (a.instructions / 40).max(1)).max(1);
        b = b.tuner(TunerConfig::scaled_down(divisor));
    }
    b.build()
}

fn simulate(a: &RunArgs, policy: PolicyKind) -> SimReport {
    Simulation::new(build_config(a, policy)).run()
}

fn print_energy(report: &SimReport) {
    let e = evaluate(report, &EnergyParams::homogeneous());
    println!("energy (homogeneous CMP): {e}");
    let h = evaluate(report, &EnergyParams::heterogeneous());
    println!("energy (efficient OS core): {h}");
}

/// `osoffload run`: one simulation, detailed report.
///
/// With `--telemetry`, the run captures spans and epoch-sampled metrics
/// and writes `<profile>.trace.json`, `<profile>.metrics.csv`, and
/// `<profile>.metrics.json` under `--trace-out` (default
/// `results/telemetry`). Telemetry is observational: the printed report
/// is bit-identical with or without it.
pub fn run(a: &RunArgs) -> i32 {
    let report = if a.telemetry {
        let mut cfg = build_config(a, a.policy);
        cfg.telemetry = TelemetryMode::Full;
        let (report, telemetry) = Simulation::new(cfg).run_with_telemetry();
        let dir = std::path::PathBuf::from(a.trace_out.as_deref().unwrap_or("results/telemetry"));
        match telemetry.write_files(&dir, &a.profile) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("telemetry: wrote {}", p.display());
                }
            }
            Err(e) => eprintln!(
                "telemetry: could not write files under {}: {e}",
                dir.display()
            ),
        }
        report
    } else {
        simulate(a, a.policy)
    };
    if a.json {
        println!("{}", report.to_json());
        return 0;
    }
    println!("{report}");
    println!(
        "  cycles {}   L1D {:.1}%  L1I {:.1}%  L2(user) {:.1}%  L2(OS) {:.1}%",
        report.cycles,
        report.l1d_hit_rate * 100.0,
        report.l1i_hit_rate * 100.0,
        report.l2_user_hit_rate * 100.0,
        report.l2_os_hit_rate * 100.0,
    );
    println!(
        "  coherence: {} c2c transfers, {} invalidation rounds, {} DRAM accesses",
        report.c2c_transfers, report.invalidation_rounds, report.dram_accesses
    );
    if report.offloads > 0 {
        println!(
            "  off-loading: {} migrated / {} local, queue mean {:.0} cyc \
             (p50 {} / p95 {} / p99 {} cyc)",
            report.offloads,
            report.local_invocations,
            report.queue.mean_delay,
            report.queue.p50_delay,
            report.queue.p95_delay,
            report.queue.p99_delay
        );
    }
    if let Some(p) = &report.predictor {
        println!(
            "  predictor: {:.1}% exact, {:.1}% within ±5%, {:.1}% underestimates",
            p.exact * 100.0,
            p.within_5pct * 100.0,
            p.underestimates * 100.0
        );
    }
    if let Some(n) = report.final_threshold {
        if report.tuner_events > 0 {
            println!(
                "  tuner: settled on N = {n} after {} epochs",
                report.tuner_events
            );
        }
    }
    if report.throttled_cycles > 0 {
        println!("  adaptation: {} throttled cycles", report.throttled_cycles);
    }
    if a.energy {
        print_energy(&report);
    }
    0
}

/// `osoffload compare`: baseline vs SI vs DI vs HI.
pub fn compare(a: &RunArgs) -> i32 {
    let baseline = simulate(a, PolicyKind::Baseline);
    println!(
        "{} @ {} cyc one-way, {} insn (baseline {:.4} insn/cyc)\n",
        a.profile, a.latency, a.instructions, baseline.throughput
    );
    println!(
        "{:<10} {:>11} {:>10} {:>14}",
        "policy", "normalized", "offloads", "overhead cyc"
    );
    // The dynamic schemes compare at the threshold from --policy (or the
    // 500-instruction default).
    let n = match a.policy {
        PolicyKind::HardwarePredictor { threshold } => threshold,
        _ => 500,
    };
    for (name, policy) in [
        ("SI", PolicyKind::StaticInstrumentation { stub_cost: 25 }),
        (
            "DI",
            PolicyKind::DynamicInstrumentation {
                threshold: n,
                cost: 120,
            },
        ),
        ("HI", PolicyKind::HardwarePredictor { threshold: n }),
    ] {
        let r = simulate(a, policy);
        println!(
            "{:<10} {:>11.3} {:>10} {:>14}",
            name,
            r.normalized_to(&baseline),
            r.offloads,
            r.decision_overhead_cycles
        );
    }
    0
}

/// `osoffload sweep`: threshold sweep (the x-axis of Figure 4).
pub fn sweep(a: &RunArgs) -> i32 {
    let baseline = simulate(a, PolicyKind::Baseline);
    println!(
        "{} @ {} cyc one-way (baseline {:.4} insn/cyc)\n",
        a.profile, a.latency, baseline.throughput
    );
    println!(
        "{:<10} {:>11} {:>10} {:>13}",
        "N", "normalized", "offloads", "OS-core busy"
    );
    for n in [0u64, 100, 500, 1_000, 2_000, 5_000, 10_000] {
        let r = simulate(a, PolicyKind::HardwarePredictor { threshold: n });
        println!(
            "{:<10} {:>11.3} {:>10} {:>12.1}%",
            n,
            r.normalized_to(&baseline),
            r.offloads,
            r.os_core_busy_frac * 100.0
        );
    }
    0
}

/// `osoffload trace`: per-invocation CSV to stdout, summary to stderr.
pub fn trace(a: &RunArgs) -> i32 {
    let mut cfg = build_config(a, a.policy);
    cfg.trace_capacity = 100_000;
    let (report, trace) = Simulation::new(cfg).run_traced();
    print!("{}", trace.to_csv());
    eprintln!("{report}");
    eprintln!("{trace}");
    0
}

/// `osoffload list`: profiles and policy specs.
pub fn list() -> i32 {
    println!("workload profiles:");
    for p in Profile::all_server()
        .into_iter()
        .chain(Profile::all_compute())
    {
        println!(
            "  {:<14} {:?}, ~{:.0}% OS, {} thread(s)/core",
            p.name,
            p.kind,
            p.expected_os_share() * 100.0,
            p.threads_per_core
        );
    }
    println!("\npolicy specs:");
    for (spec, what) in [
        ("baseline", "no off-loading (single core)"),
        ("always", "off-load every privileged invocation"),
        (
            "hi[:N]",
            "hardware predictor, 200-entry CAM (the paper's scheme)",
        ),
        (
            "hi-dm[:N]",
            "hardware predictor, 1,500-entry direct-mapped RAM",
        ),
        ("hi-global[:N]", "ablation: global-only prediction"),
        (
            "hi-lastvalue[:N]",
            "ablation: infinite last-value, no confidence",
        ),
        (
            "di[:N[:COST]]",
            "dynamic software instrumentation of every entry",
        ),
        (
            "si[:STUB]",
            "static instrumentation from off-line profiling",
        ),
        ("oracle[:N]", "decisions on the true run length"),
    ] {
        println!("  {spec:<18} {what}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> RunArgs {
        RunArgs {
            instructions: 60_000,
            warmup: 20_000,
            ..RunArgs::default()
        }
    }

    #[test]
    fn run_emits_json_when_asked() {
        let mut a = tiny_args();
        a.json = true;
        assert_eq!(run(&a), 0);
    }

    #[test]
    fn run_completes_with_all_feature_flags() {
        let mut a = tiny_args();
        a.energy = true;
        a.tuner = true;
        assert_eq!(run(&a), 0);
        let mut a = tiny_args();
        a.rpc = true;
        assert_eq!(run(&a), 0);
        let mut a = tiny_args();
        a.adapt_milli = Some(1_250);
        assert_eq!(run(&a), 0);
    }

    #[test]
    fn run_with_telemetry_writes_files() {
        let dir = std::env::temp_dir().join(format!("osoff-cli-telem-{}", std::process::id()));
        let mut a = tiny_args();
        a.telemetry = true;
        a.trace_out = Some(dir.to_string_lossy().into_owned());
        assert_eq!(run(&a), 0);
        let trace = dir.join("apache.trace.json");
        let text = std::fs::read_to_string(&trace).expect("trace file written");
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(dir.join("apache.metrics.csv").exists());
        assert!(dir.join("apache.metrics.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_and_sweep_complete() {
        assert_eq!(compare(&tiny_args()), 0);
        assert_eq!(sweep(&tiny_args()), 0);
    }

    #[test]
    fn list_completes() {
        assert_eq!(list(), 0);
    }

    #[test]
    fn trace_completes() {
        assert_eq!(trace(&tiny_args()), 0);
    }

    #[test]
    fn config_reflects_flags() {
        let mut a = tiny_args();
        a.rpc = true;
        a.cores = 2;
        let cfg = build_config(&a, PolicyKind::HardwarePredictor { threshold: 9 });
        assert_eq!(cfg.mechanism, OffloadMechanism::RemoteCall);
        assert_eq!(cfg.user_cores, 2);
        assert_eq!(cfg.total_cores(), 3);

        let mut a = tiny_args();
        a.adapt_milli = Some(1_500);
        let cfg = build_config(&a, PolicyKind::HardwarePredictor { threshold: 9 });
        assert_eq!(cfg.resource_adaptation, Some(1_500));
        assert_eq!(cfg.total_cores(), 1, "adaptation adds no OS core");
    }
}
