//! The `osoffload serve` subcommand: daemon and client front ends for
//! the cached experiment service (see `SERVING.md`).

use crate::args::ServeArgs;
use osoffload_runner::record_plan;
use osoffload_serve::client;
use osoffload_serve::daemon::{Daemon, ServeOptions};
use osoffload_system::experiments::{fig4_grid_with, Scale, FIG4_LATENCIES, FIG4_THRESHOLDS};
use std::io::Write;
use std::path::PathBuf;

/// Exit code of `serve submit --require-cached` when any point had to
/// be computed fresh.
pub const EXIT_NOT_CACHED: i32 = 4;

/// Runs one `serve` subcommand, returning the process exit code.
pub fn serve(args: &ServeArgs) -> i32 {
    match args {
        ServeArgs::Start {
            port,
            cache,
            out,
            workers,
            lanes,
            retries,
            cache_max,
            inject_faults,
            quiet,
        } => {
            let opts = ServeOptions {
                port: *port,
                cache: PathBuf::from(cache),
                out_dir: PathBuf::from(out),
                cache_capacity: *cache_max,
                workers: *workers,
                lanes: *lanes,
                retries: *retries,
                fault_seed: *inject_faults,
                quiet: *quiet,
            };
            let mut daemon = match Daemon::bind(opts) {
                Ok(d) => d,
                Err(why) => {
                    eprintln!("error: {why}");
                    return 1;
                }
            };
            // The smoke scripts wait for this line before submitting;
            // flush so it is visible even through a pipe.
            println!("serve: listening on {}", daemon.local_addr());
            let _ = std::io::stdout().flush();
            match daemon.run() {
                Ok(()) => {
                    println!("serve: shutdown");
                    0
                }
                Err(why) => {
                    eprintln!("error: {why}");
                    1
                }
            }
        }
        ServeArgs::Submit {
            port,
            fig4,
            require_cached,
            quiet,
        } => {
            let scale = Scale::from_arg(fig4).expect("validated by the parser");
            let plan = record_plan("fig4", scale.seed, |ev| {
                fig4_grid_with(scale, FIG4_LATENCIES, FIG4_THRESHOLDS, ev)
            });
            let request = match client::submit_request_line(&plan) {
                Ok(line) => line,
                Err(why) => {
                    eprintln!("error: {why}");
                    return 1;
                }
            };
            let outcome = client::submit(*port, &request, |event| {
                if !quiet {
                    println!("{event}");
                }
            });
            match outcome {
                Ok(o) => {
                    eprintln!(
                        "serve submit: {} points, {} hits, {} misses, {} failed -> {}",
                        o.points, o.hits, o.misses, o.failed, o.archive
                    );
                    if o.failed > 0 {
                        1
                    } else if *require_cached && o.misses > 0 {
                        eprintln!(
                            "serve submit: --require-cached but {} points were computed fresh",
                            o.misses
                        );
                        EXIT_NOT_CACHED
                    } else {
                        0
                    }
                }
                Err(why) => {
                    eprintln!("error: {why}");
                    1
                }
            }
        }
        ServeArgs::Ping { port } => one_shot(client::ping(*port)),
        ServeArgs::Stats { port } => one_shot(client::stats(*port)),
        ServeArgs::Stop { port } => one_shot(client::stop(*port)),
    }
}

fn one_shot(response: Result<String, String>) -> i32 {
    match response {
        Ok(line) => {
            println!("{line}");
            0
        }
        Err(why) => {
            eprintln!("error: {why}");
            1
        }
    }
}
