//! The `osoffload serve` subcommand: daemon and client front ends for
//! the cached experiment service (see `SERVING.md`), plus the chaos
//! proxy used by the nightly fault-injection campaign.

use crate::args::ServeArgs;
use osoffload_runner::record_plan;
use osoffload_serve::chaos::{ChaosConfig, ChaosProxy};
use osoffload_serve::client::{self, RetryPolicy};
use osoffload_serve::daemon::{Daemon, ServeOptions};
use osoffload_system::experiments::{fig4_grid_with, Scale, FIG4_LATENCIES, FIG4_THRESHOLDS};
use std::io::Write;
use std::net::SocketAddr;
use std::path::PathBuf;

/// Exit code of `serve submit --require-cached` when any point had to
/// be computed fresh.
pub const EXIT_NOT_CACHED: i32 = 4;

/// Runs one `serve` subcommand, returning the process exit code.
pub fn serve(args: &ServeArgs) -> i32 {
    match args {
        ServeArgs::Start {
            port,
            cache,
            out,
            workers,
            lanes,
            retries,
            cache_max,
            cache_ttl_secs,
            submit_slots,
            admit_queue,
            conn_workers,
            read_timeout_ms,
            write_timeout_ms,
            request_deadline_ms,
            max_line_bytes,
            inject_faults,
            quiet,
        } => {
            let opts = ServeOptions {
                port: *port,
                cache: PathBuf::from(cache),
                out_dir: PathBuf::from(out),
                cache_capacity: *cache_max,
                cache_ttl_secs: *cache_ttl_secs,
                workers: *workers,
                lanes: *lanes,
                retries: *retries,
                submit_slots: *submit_slots,
                admit_queue: *admit_queue,
                conn_workers: *conn_workers,
                read_timeout_ms: *read_timeout_ms,
                write_timeout_ms: *write_timeout_ms,
                request_deadline_ms: *request_deadline_ms,
                max_line_bytes: *max_line_bytes,
                fault_seed: *inject_faults,
                quiet: *quiet,
            };
            let mut daemon = match Daemon::bind(opts) {
                Ok(d) => d,
                Err(why) => {
                    eprintln!("error: {why}");
                    return 1;
                }
            };
            // The smoke scripts wait for this line before submitting;
            // flush so it is visible even through a pipe.
            println!("serve: listening on {}", daemon.local_addr());
            let _ = std::io::stdout().flush();
            match daemon.run() {
                Ok(()) => {
                    println!("serve: shutdown");
                    0
                }
                Err(why) => {
                    eprintln!("error: {why}");
                    1
                }
            }
        }
        ServeArgs::Submit {
            port,
            fig4,
            require_cached,
            retries,
            backoff_ms,
            quiet,
        } => {
            let scale = Scale::from_arg(fig4).expect("validated by the parser");
            let plan = record_plan("fig4", scale.seed, |ev| {
                fig4_grid_with(scale, FIG4_LATENCIES, FIG4_THRESHOLDS, ev)
            });
            let request = match client::submit_request_line(&plan) {
                Ok(line) => line,
                Err(why) => {
                    eprintln!("error: {why}");
                    return 1;
                }
            };
            let policy = RetryPolicy {
                retries: *retries,
                backoff_ms: *backoff_ms,
                seed: plan.master_seed(),
            };
            let outcome = client::submit_with_retry(*port, &request, policy, |event| {
                if !quiet {
                    println!("{event}");
                }
            });
            match outcome {
                Ok(o) => {
                    eprintln!(
                        "serve submit: {} points, {} hits, {} misses, {} failed -> {}",
                        o.points, o.hits, o.misses, o.failed, o.archive
                    );
                    if o.failed > 0 {
                        1
                    } else if *require_cached && o.misses > 0 {
                        eprintln!(
                            "serve submit: --require-cached but {} points were computed fresh",
                            o.misses
                        );
                        EXIT_NOT_CACHED
                    } else {
                        0
                    }
                }
                Err(why) => {
                    eprintln!("error: {why}");
                    1
                }
            }
        }
        ServeArgs::Proxy {
            port,
            upstream,
            seed,
            fault_pct,
            log,
        } => {
            let cfg = ChaosConfig {
                fault_rate: f64::from(*fault_pct) / 100.0,
                ..ChaosConfig::default()
            };
            let target: SocketAddr = ([127, 0, 0, 1], *upstream).into();
            let proxy = match ChaosProxy::start(
                *port,
                target,
                *seed,
                cfg,
                log.as_deref().map(std::path::Path::new),
            ) {
                Ok(p) => p,
                Err(why) => {
                    eprintln!("error: {why}");
                    return 1;
                }
            };
            // Same contract as `serve start`: scripts wait for this
            // line, then point clients at the proxy port.
            println!(
                "proxy: listening on {} -> 127.0.0.1:{upstream}",
                proxy.local_addr()
            );
            let _ = std::io::stdout().flush();
            // The proxy runs until the process is killed (the chaos CI
            // job tears it down with the daemon).
            loop {
                std::thread::park();
            }
        }
        ServeArgs::Ping { port } => one_shot(client::ping(*port)),
        ServeArgs::Stats { port } => one_shot(client::stats(*port)),
        ServeArgs::Stop { port } => one_shot(client::stop(*port)),
    }
}

fn one_shot(response: Result<String, String>) -> i32 {
    match response {
        Ok(line) => {
            println!("{line}");
            0
        }
        Err(why) => {
            eprintln!("error: {why}");
            1
        }
    }
}
