//! `osoffload` — command-line front end for the simulator.
//!
//! See `osoffload help` (or [`args::USAGE`]) for the interface.

mod args;
mod commands;
mod inspect;
mod serve;

use args::Command;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match args::parse(&argv) {
        Ok(Command::Help) => {
            print!("{}", args::USAGE);
            0
        }
        Ok(Command::List) => commands::list(),
        Ok(Command::Run(a)) => commands::run(&a),
        Ok(Command::Compare(a)) => commands::compare(&a),
        Ok(Command::Sweep(a)) => commands::sweep(&a),
        Ok(Command::Trace(a)) => commands::trace(&a),
        Ok(Command::Inspect(a)) => inspect::inspect(&a),
        Ok(Command::Serve(a)) => serve::serve(&a),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'osoffload help' for usage");
            2
        }
    };
    std::process::exit(code);
}
