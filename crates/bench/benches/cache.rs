//! Micro-benchmarks of the memory-hierarchy substrate: per-access cost of
//! L1 hits, L2 hits, and cross-core coherence transactions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use osoffload_mem::{Access, Address, CoreId, MemConfig, MemorySystem};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");

    let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
    let hot = Address::new(0x4000);
    mem.access(CoreId::new(0), Access::read(hot));
    g.bench_function("l1_hit", |b| {
        b.iter(|| black_box(mem.access(CoreId::new(0), Access::read(black_box(hot)))))
    });

    let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
    let mut i = 0u64;
    g.bench_function("streaming_misses", |b| {
        b.iter(|| {
            i += 64;
            black_box(mem.access(CoreId::new(0), Access::read(Address::new(i))))
        })
    });

    let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
    let line = Address::new(0x8000);
    g.bench_function("coherence_ping_pong", |b| {
        b.iter(|| {
            mem.access(CoreId::new(0), Access::write(line));
            black_box(mem.access(CoreId::new(1), Access::write(line)))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
