//! Micro-benchmarks of the memory-hierarchy substrate: per-access cost of
//! L1 hits, L2 hits, and cross-core coherence transactions.

use osoffload_bench::timing::{bench, black_box};
use osoffload_mem::{Access, Address, CoreId, MemConfig, MemorySystem};

fn main() {
    let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
    let hot = Address::new(0x4000);
    mem.access(CoreId::new(0), Access::read(hot));
    bench("memory/l1_hit", || {
        black_box(mem.access(CoreId::new(0), Access::read(black_box(hot))))
    });

    let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
    let mut i = 0u64;
    bench("memory/streaming_misses", || {
        i += 64;
        black_box(mem.access(CoreId::new(0), Access::read(Address::new(i))))
    });

    let mut mem = MemorySystem::new(MemConfig::paper_baseline(2));
    let line = Address::new(0x8000);
    bench("memory/coherence_ping_pong", || {
        mem.access(CoreId::new(0), Access::write(line));
        black_box(mem.access(CoreId::new(1), Access::write(line)))
    });
}
