//! End-to-end simulation throughput: simulated instructions per second of
//! wall-clock time for the assembled CMP, the number that bounds how long
//! each figure regeneration takes.

use osoffload_bench::timing::{black_box, time_fn};
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;
use std::time::Duration;

fn main() {
    const INSN: u64 = 200_000;
    for (name, profile, policy) in [
        ("apache_baseline", Profile::apache(), PolicyKind::Baseline),
        (
            "apache_hi_offload",
            Profile::apache(),
            PolicyKind::HardwarePredictor { threshold: 500 },
        ),
        (
            "compute_baseline",
            Profile::blackscholes(),
            PolicyKind::Baseline,
        ),
    ] {
        let ns = time_fn(Duration::from_millis(600), || {
            let cfg = SystemConfig::builder()
                .profile(profile.clone())
                .policy(policy)
                .migration_latency(1_000)
                .instructions(INSN)
                .warmup(0)
                .seed(42)
                .build();
            black_box(Simulation::new(cfg).run())
        });
        let minsn_per_sec = INSN as f64 / ns * 1_000.0;
        println!("system/{name}: {ns:.0} ns/run ({minsn_per_sec:.2} Minsn/s)");
    }
}
