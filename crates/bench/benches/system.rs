//! End-to-end simulation throughput: simulated instructions per second of
//! wall-clock time for the assembled CMP, the number that bounds how long
//! each figure regeneration takes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);

    const INSN: u64 = 200_000;
    for (name, profile, policy) in [
        ("apache_baseline", Profile::apache(), PolicyKind::Baseline),
        (
            "apache_hi_offload",
            Profile::apache(),
            PolicyKind::HardwarePredictor { threshold: 500 },
        ),
        ("compute_baseline", Profile::blackscholes(), PolicyKind::Baseline),
    ] {
        g.throughput(Throughput::Elements(INSN));
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = SystemConfig::builder()
                    .profile(profile.clone())
                    .policy(policy)
                    .migration_latency(1_000)
                    .instructions(INSN)
                    .warmup(0)
                    .seed(42)
                    .build();
                black_box(Simulation::new(cfg).run())
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
