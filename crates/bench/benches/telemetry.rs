//! Per-event cost of the telemetry hot path: the disabled handle (one
//! never-taken branch), the no-op sink (construct-and-discard, isolating
//! event-construction cost), and the full ring-buffer sink.

use osoffload_bench::timing::{bench, black_box};
use osoffload_obs::{Event, EventKind, Telemetry, Track};

fn invocation_event(astate: u64) -> Event {
    Event {
        ts: black_box(12_345),
        dur: black_box(900),
        track: Track::Thread(3),
        kind: EventKind::Invocation {
            name: "read",
            trap: 0x100,
            astate,
            predicted: Some(1_000),
            offloaded: true,
            actual_len: 900,
            queue_delay: 10,
        },
    }
}

fn main() {
    let mut off = Telemetry::off();
    let mut n = 0u64;
    bench("telemetry/emit_off", || {
        n = n.wrapping_add(1);
        off.emit_with(|| invocation_event(n));
        off.seen()
    });

    let mut noop = Telemetry::noop();
    bench("telemetry/emit_noop", || {
        n = n.wrapping_add(1);
        noop.emit_with(|| invocation_event(n));
        noop.seen()
    });

    let mut full = Telemetry::buffered(1 << 16);
    bench("telemetry/emit_full_ring", || {
        n = n.wrapping_add(1);
        full.emit_with(|| invocation_event(n));
        full.seen()
    });
    black_box(full.dropped());
}
