//! Micro-benchmarks of the run-length predictor: the structure the paper
//! argues must make "single-cycle" decisions in hardware. The software
//! model's throughput bounds how fast the full-system simulation can go.

use osoffload_bench::timing::{bench, black_box};
use osoffload_core::{AState, CamPredictor, DirectMappedPredictor, RunLengthPredictor};

fn warmed_cam() -> CamPredictor {
    let mut p = CamPredictor::paper_default();
    for i in 0..200u64 {
        let a = AState::from(i.wrapping_mul(0x9E37_79B9));
        let pred = p.predict(a);
        p.learn(a, pred, 500 + i);
    }
    p
}

fn main() {
    let mut cam = warmed_cam();
    let mut i = 0u64;
    bench("predictor/cam_predict_hit", || {
        i = (i + 1) % 200;
        let a = AState::from(i.wrapping_mul(0x9E37_79B9));
        black_box(cam.predict(black_box(a)))
    });

    let mut cam = warmed_cam();
    let mut i = 0u64;
    bench("predictor/cam_predict_learn_cycle", || {
        i = (i + 1) % 200;
        let a = AState::from(i.wrapping_mul(0x9E37_79B9));
        let pred = cam.predict(a);
        cam.learn(a, pred, 500 + i);
        black_box(pred)
    });

    let mut dm = DirectMappedPredictor::paper_default();
    let mut i = 0u64;
    bench("predictor/direct_mapped_predict_learn_cycle", || {
        i = i.wrapping_add(0x9E37_79B9);
        let a = AState::from(i);
        let pred = dm.predict(a);
        dm.learn(a, pred, 1_000);
        black_box(pred)
    });

    let mut arch = osoffload_cpu::ArchState::new();
    arch.set_syscall_registers(0x103, 4, 8192);
    arch.enter_privileged();
    bench("predictor/astate_hash", || {
        black_box(AState::from_arch(black_box(&arch)))
    });
}
