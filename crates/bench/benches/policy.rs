//! Micro-benchmarks of the decision policies: the per-OS-entry cost of
//! each mechanism in the simulator (the modelled costs — 1 cycle for HI,
//! hundreds for DI — are charged separately by the timing model).

use osoffload_bench::timing::{bench, black_box};
use osoffload_core::{
    AState, CamPredictor, DynamicInstrumentation, HardwarePredictor, NeverOffload, OffloadPolicy,
    OsEntry, StaticInstrumentation,
};
use std::collections::HashMap;

fn entry(i: u64) -> OsEntry {
    OsEntry {
        astate: AState::from(i.wrapping_mul(0x9E37_79B9)),
        routine: 0x100 + (i % 30),
    }
}

fn main() {
    let mut baseline = NeverOffload;
    let mut i = 0u64;
    bench("policy/baseline_decide", || {
        i += 1;
        black_box(baseline.decide(black_box(entry(i % 40))))
    });

    let mut hi = HardwarePredictor::new(CamPredictor::paper_default(), 1_000);
    let mut i = 0u64;
    bench("policy/hi_decide_complete", || {
        i += 1;
        let e = entry(i % 40);
        let d = hi.decide(e);
        hi.complete(e, &d, 1_500);
        black_box(d)
    });

    let mut di = DynamicInstrumentation::new(CamPredictor::paper_default(), 1_000, 120);
    let mut i = 0u64;
    bench("policy/di_decide_complete", || {
        i += 1;
        let e = entry(i % 40);
        let d = di.decide(e);
        di.complete(e, &d, 1_500);
        black_box(d)
    });

    let mut profile = HashMap::new();
    for r in 0..30u64 {
        profile.insert(0x100 + r, (r * 700) as f64);
    }
    let mut si = StaticInstrumentation::from_profile(&profile, 5_000, 25);
    let mut i = 0u64;
    bench("policy/si_decide", || {
        i += 1;
        black_box(si.decide(black_box(entry(i % 40))))
    });
}
