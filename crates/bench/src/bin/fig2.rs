//! Figure 2 is the block diagram of the OS run-length predictor; it has
//! no data series. This binary prints the implemented structure so the
//! diagram can be cross-checked against the code, and archives the
//! parameters as `results/fig2.json`.

use osoffload_bench::harness;
use osoffload_core::{CamPredictor, RunLengthPredictor};

fn main() {
    let (_, opts) = harness::parse_args();
    let p = CamPredictor::paper_default();
    println!("Figure 2: OS run-length predictor with configurable threshold\n");
    println!("  AState = PSTATE ^ %g0 ^ %g1 ^ %i0 ^ %i1   (64-bit XOR hash)");
    println!(
        "  organisation: {} ({} entries, {} bytes)",
        p.organization(),
        p.capacity(),
        p.storage_bytes()
    );
    println!("  per entry: 64-bit AState tag, 16-bit last run length, 2-bit confidence");
    println!("  confidence: +1 if |pred - actual| <= 5%, else -1; at 0 use global fallback");
    println!("  global fallback: mean run length of the last 3 invocations (any AState)");
    println!("  decision: off-load if predicted length > N (threshold from the tuner)");
    let rows = vec![
        vec!["organization".to_string(), p.organization().to_string()],
        vec!["entries".to_string(), p.capacity().to_string()],
        vec!["storage_bytes".to_string(), p.storage_bytes().to_string()],
    ];
    harness::write_static("fig2", &["parameter", "value"], &rows, &opts);
}
