//! Regenerates the §III-B dynamic-threshold-estimation behaviour: the
//! epoch-by-epoch decision log of the tuner on Apache.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin tuner_trace [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::experiments::tuner_trace;
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    println!("Section III-B: dynamic estimation of N (Apache, 1,000-cycle overhead)\n");
    let (report, trace) = tuner_trace(scale, Profile::apache());
    let table: Vec<Vec<String>> = trace
        .iter()
        .map(|e| {
            vec![
                e.epoch.to_string(),
                format!("N={}", e.threshold),
                format!("{:.4}", e.l2_hit_rate),
                if e.adopted {
                    "ADOPTED".to_string()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["epoch", "sampled", "mean L2 hit rate", ""], &table)
    );
    println!(
        "\nfinal threshold: N={}   throughput: {:.4} insn/cyc   epochs: {}",
        report.final_threshold.unwrap_or(0),
        report.throughput,
        report.tuner_events
    );
}
