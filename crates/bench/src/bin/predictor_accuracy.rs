//! Regenerates the §III-A predictor accuracy results: exact / ±5% rates,
//! the CAM-vs-direct-mapped organisation comparison, and table sizing.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin predictor_accuracy [quick|full|paper]`

use osoffload_bench::{pct, render_table, scale_from_args};
use osoffload_core::{CamPredictor, DirectMappedPredictor, RunLengthPredictor};
use osoffload_system::experiments::predictor_accuracy;

fn main() {
    let scale = scale_from_args();
    println!("Section III-A: run-length predictor accuracy\n");
    let cam = CamPredictor::paper_default();
    let dm = DirectMappedPredictor::paper_default();
    println!(
        "storage: {}-entry CAM = {} B (paper ~2 KB); {}-entry direct-mapped = {} B (paper ~3.3 KB)\n",
        cam.capacity(), cam.storage_bytes(), dm.capacity(), dm.storage_bytes()
    );
    let rows = predictor_accuracy(scale, &[25, 50, 100, 200, 400], &[375, 1500]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.organization.clone(),
                r.entries.to_string(),
                pct(r.exact),
                pct(r.within_5pct),
                pct(r.underestimates),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "organization",
                "entries",
                "exact",
                "within ±5%",
                "underestimates"
            ],
            &table
        )
    );
    println!("\nPaper reference (all-benchmark average): 73.6% exact, 98.4% within ±5%;");
    println!("200-entry CAM ≈ infinite-history accuracy; errors are mostly underestimates.");
}
