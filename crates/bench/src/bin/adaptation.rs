//! Li & John-style resource adaptation (§VI-B) driven by the paper's
//! predictor: instead of migrating long OS sequences, the core throttles
//! to a low-power mode while executing them locally. The paper argues
//! "our hardware-based decision engine could be utilized effectively for
//! the type of reconfiguration proposed by Li et al." — this experiment
//! quantifies that claim against off-loading.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin adaptation [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_energy::{evaluate, EnergyParams};
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    println!("Resource adaptation vs off-loading (HI decisions, N = 1,000)\n");
    let mut table = Vec::new();
    for profile in [Profile::apache(), Profile::derby()] {
        let hi = PolicyKind::HardwarePredictor { threshold: 1_000 };
        let build = |policy: PolicyKind, adaptation: Option<u64>| {
            let mut b = SystemConfig::builder()
                .profile(profile.clone())
                .policy(policy)
                .migration_latency(1_000)
                .instructions(scale.instructions)
                .warmup(scale.warmup)
                .seed(scale.seed);
            if let Some(m) = adaptation {
                b = b.resource_adaptation(m);
            }
            Simulation::new(b.build()).run()
        };

        let baseline = build(PolicyKind::Baseline, None);
        let base_energy = evaluate(&baseline, &EnergyParams::homogeneous());
        for (label, report) in [
            ("baseline", &baseline),
            ("off-load (HI)", &build(hi, None)),
            ("adapt 1.25x slower", &build(hi, Some(1_250))),
            ("adapt 1.5x slower", &build(hi, Some(1_500))),
        ] {
            let energy = evaluate(report, &EnergyParams::homogeneous());
            table.push(vec![
                profile.name.to_string(),
                label.to_string(),
                format!("{:.3}", report.throughput / baseline.throughput),
                format!("{:.3}", energy.energy_normalized_to(&base_energy)),
                format!("{:.3}", energy.edp_normalized_to(&base_energy)),
                report.throttled_cycles.to_string(),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "configuration",
                "perf (norm)",
                "energy (norm)",
                "EDP (norm)",
                "throttled cyc"
            ],
            &table
        )
    );
    println!("\nAdaptation needs no second core or migration machinery: it gives up the");
    println!("cache-isolation benefit but saves energy without the off-load overheads —");
    println!("the same predictor drives both knobs.");
}
