//! Measures the wall-clock cost of the telemetry subsystem on a
//! reference simulation (apache, HI N=500) in three modes:
//!
//! - `off`  — telemetry disabled (the default; one never-taken branch),
//! - `noop` — events constructed and discarded (counts only),
//! - `full` — events buffered and epoch metrics sampled.
//!
//! All three runs must produce bit-identical reports — telemetry is
//! observational — and the binary exits non-zero if they do not.
//! Archives `results/BENCH_telemetry_overhead.json`.
//!
//! Usage:
//! `cargo run --release -p osoffload-bench --bin telemetry_overhead [quick|full|paper]`

use osoffload_bench::{harness, render_table};
use osoffload_obs::TelemetryMode;
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;
use std::time::Instant;

/// Wall nanoseconds for one simulation of `cfg`, plus the
/// (deterministic) report JSON.
fn time_run(cfg: &SystemConfig) -> (f64, String) {
    let start = Instant::now();
    let report = Simulation::new(cfg.clone()).run();
    let ns = start.elapsed().as_nanos() as f64;
    (ns, report.to_json())
}

fn main() {
    let (scale, opts) = harness::parse_args();
    let reps = if scale.instructions <= 500_000 { 7 } else { 3 };
    let base = SystemConfig::builder()
        .profile(Profile::apache())
        .policy(PolicyKind::HardwarePredictor { threshold: 500 })
        .migration_latency(1_000)
        .instructions(scale.instructions)
        .warmup(scale.warmup)
        .seed(scale.seed)
        .build();

    let modes = [
        ("off", TelemetryMode::Off),
        ("noop", TelemetryMode::Noop),
        ("full", TelemetryMode::Full),
    ];
    let cfgs: Vec<SystemConfig> = modes
        .iter()
        .map(|&(_, mode)| {
            let mut cfg = base.clone();
            cfg.telemetry = mode;
            cfg
        })
        .collect();

    // One untimed pass warms the allocator/page cache so the first mode
    // measured is not charged the process cold-start; the timed reps then
    // interleave the modes so drift hits all three equally. Best-of-reps
    // discards scheduling noise.
    let mut reports: Vec<String> = cfgs.iter().map(|cfg| time_run(cfg).1).collect();
    let mut best = vec![f64::INFINITY; modes.len()];
    for _ in 0..reps {
        for (i, cfg) in cfgs.iter().enumerate() {
            let (ns, json) = time_run(cfg);
            best[i] = best[i].min(ns);
            reports[i] = json;
        }
    }
    let timings: Vec<(&str, f64)> = modes
        .iter()
        .zip(&best)
        .map(|(&(label, _), &ns)| (label, ns))
        .collect();

    let identical = reports.iter().all(|r| r == &reports[0]);
    let off_ns = timings[0].1;
    let overhead = |ns: f64| (ns / off_ns - 1.0) * 100.0;

    let rows: Vec<Vec<String>> = timings
        .iter()
        .map(|(label, ns)| {
            vec![
                label.to_string(),
                format!("{:.2}", ns / 1e6),
                format!(
                    "{:.2}",
                    scale.instructions as f64 / ns * 1e3 // Minsn per wall second
                ),
                format!("{:+.2}%", overhead(*ns)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["mode", "ms/run", "Minsn/s", "vs off"], &rows)
    );
    println!(
        "reports bit-identical across modes: {}",
        if identical { "yes" } else { "NO" }
    );

    let mode_rows: Vec<String> = timings
        .iter()
        .map(|(label, ns)| {
            format!(
                "{{\"mode\":\"{label}\",\"ns_per_run\":{ns:.0},\"overhead_pct\":{:.4}}}",
                overhead(*ns)
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"telemetry_overhead\",\"instructions\":{},\"warmup\":{},\"seed\":{},\
         \"reps\":{},\"reports_identical\":{},\"modes\":[{}]}}",
        scale.instructions,
        scale.warmup,
        scale.seed,
        reps,
        identical,
        mode_rows.join(",")
    );
    let path = opts.out_dir.join("BENCH_telemetry_overhead.json");
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!(
            "[telemetry_overhead] could not create {}: {e}",
            opts.out_dir.display()
        );
    }
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("[telemetry_overhead] wrote {}", path.display()),
        Err(e) => eprintln!("[telemetry_overhead] could not write results: {e}"),
    }

    if !identical {
        eprintln!("[telemetry_overhead] FAIL: telemetry perturbed the simulation report");
        std::process::exit(1);
    }
}
