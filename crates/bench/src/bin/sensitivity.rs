//! Sensitivity of the off-loading benefit to the memory-system
//! parameters around it: L2 capacity, DRAM latency, and the
//! cache-to-cache transfer cost (the knob §IV says must be modelled
//! independently). Both the baseline and the off-loading run share each
//! varied substrate, so the ratio isolates the policy's benefit.
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/sensitivity.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin sensitivity [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, render_table};
use osoffload_system::experiments::sensitivity_with;
use osoffload_workload::Profile;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Sensitivity of the Apache off-loading benefit (HI, N=100, 1,000 cyc)\n");
    let rows = harness::run("sensitivity", scale, &opts, |ev| {
        sensitivity_with(scale, Profile::apache(), ev)
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let value = match r.parameter.as_str() {
                "l2_kb" => format!("{} KB", r.value),
                _ => format!("{} cyc", r.value),
            };
            vec![r.parameter.clone(), value, format!("{:.3}", r.normalized)]
        })
        .collect();
    print!(
        "{}",
        render_table(&["parameter", "value", "normalized IPC"], &table)
    );
    println!("\nReading: the benefit is largest exactly when caches are precious —");
    println!("small L2s and slow DRAM amplify it, abundant L2 erases it — and cheaper");
    println!("cache-to-cache transfers help, confirming coherence is the main tax.");
}
