//! Sensitivity of the off-loading benefit to the memory-system
//! parameters around it: L2 capacity, DRAM latency, and the
//! cache-to-cache transfer cost (the knob §IV says must be modelled
//! independently). Both the baseline and the off-loading run share each
//! varied substrate, so the ratio isolates the policy's benefit.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin sensitivity [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::experiments::sensitivity;
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    println!("Sensitivity of the Apache off-loading benefit (HI, N=100, 1,000 cyc)\n");
    let rows = sensitivity(scale, Profile::apache());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let value = match r.parameter.as_str() {
                "l2_kb" => format!("{} KB", r.value),
                _ => format!("{} cyc", r.value),
            };
            vec![r.parameter.clone(), value, format!("{:.3}", r.normalized)]
        })
        .collect();
    print!("{}", render_table(&["parameter", "value", "normalized IPC"], &table));
    println!("\nReading: the benefit is largest exactly when caches are precious —");
    println!("small L2s and slow DRAM amplify it, abundant L2 erases it — and cheaper");
    println!("cache-to-cache transfers help, confirming coherence is the main tax.");
}
