//! Regenerates Figure 3: binary prediction hit rate for core-migration
//! trigger thresholds.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig3 [quick|full|paper]`

use osoffload_bench::{pct, render_table, scale_from_args};
use osoffload_system::experiments::fig3;

fn main() {
    let scale = scale_from_args();
    println!("Figure 3: binary off-load decision accuracy vs threshold N\n");
    let rows = fig3(scale);
    let headers: Vec<String> = std::iter::once("workload".to_string())
        .chain(rows[0].points.iter().map(|p| format!("N={}", p.threshold)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.workload.clone())
                .chain(r.points.iter().map(|p| pct(p.accuracy)))
                .collect()
        })
        .collect();
    print!("{}", render_table(&header_refs, &table));
    println!("\nPaper reference at N=500: Apache 94.8%, SPECjbb 93.4%, Derby 96.8%, compute 99.6%.");
}
