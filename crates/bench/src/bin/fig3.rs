//! Regenerates Figure 3: binary prediction hit rate for core-migration
//! trigger thresholds.
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/fig3.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig3 [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, pct, render_table};
use osoffload_system::experiments::fig3_with;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Figure 3: binary off-load decision accuracy vs threshold N\n");
    let rows = harness::run("fig3", scale, &opts, |ev| fig3_with(scale, ev));
    let headers: Vec<String> = std::iter::once("workload".to_string())
        .chain(rows[0].points.iter().map(|p| format!("N={}", p.threshold)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.workload.clone())
                .chain(r.points.iter().map(|p| pct(p.accuracy)))
                .collect()
        })
        .collect();
    print!("{}", render_table(&header_refs, &table));
    println!(
        "\nPaper reference at N=500: Apache 94.8%, SPECjbb 93.4%, Derby 96.8%, compute 99.6%."
    );
}
