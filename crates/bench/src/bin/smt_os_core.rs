//! Extension of §V-C: can an SMT OS core rescue the 4:1 provisioning
//! ratio? The paper observes that "as a non-SMT core" the OS core
//! serialises requests; this experiment provisions 1, 2 and 4 hardware
//! contexts and re-runs the scaling study (SPECjbb, N = 100, 1,000-cycle
//! overhead). The context model is optimistic (no pipeline interference),
//! so this bounds what SMT could buy.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin smt_os_core [quick|full|paper]`

use osoffload_bench::{pct, render_table, scale_from_args};
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    println!("SMT OS core vs user-core scaling (SPECjbb, N = 100, 1,000 cyc)\n");
    let mut table = Vec::new();
    for user_cores in [2usize, 4] {
        let baseline = Simulation::new(
            SystemConfig::builder()
                .profile(Profile::specjbb())
                .policy(PolicyKind::Baseline)
                .user_cores(user_cores)
                .instructions(scale.instructions)
                .warmup(scale.warmup)
                .seed(scale.seed)
                .build(),
        )
        .run();
        for contexts in [1usize, 2, 4] {
            let r = Simulation::new(
                SystemConfig::builder()
                    .profile(Profile::specjbb())
                    .policy(PolicyKind::HardwarePredictor { threshold: 100 })
                    .migration_latency(1_000)
                    .user_cores(user_cores)
                    .os_core_contexts(contexts)
                    .instructions(scale.instructions)
                    .warmup(scale.warmup)
                    .seed(scale.seed)
                    .build(),
            )
            .run();
            table.push(vec![
                format!("{user_cores}:1"),
                contexts.to_string(),
                format!("{:.0} cyc", r.queue.mean_delay),
                pct(r.os_core_busy_frac),
                format!("{:+.1}%", (r.normalized_to(&baseline) - 1.0) * 100.0),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "ratio",
                "SMT contexts",
                "mean queue delay",
                "OS-core busy",
                "vs no-offload"
            ],
            &table
        )
    );
    println!("\nExpected: added contexts collapse the queueing delay, recovering part");
    println!("of the 4:1 loss — supporting the paper's \"1:N may be the appropriate");
    println!("ratio\" only when the OS core is multi-threaded.");
}
