//! Regenerates Figure 1: runtime overhead of dynamic software
//! instrumentation for all possible OS off-loading points.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig1 [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::experiments::fig1;

fn main() {
    let scale = scale_from_args();
    println!("Figure 1: overhead of software-instrumenting every OS entry point");
    println!("(off-loading disabled; overhead relative to uninstrumented baseline)\n");
    let costs = [50u64, 100, 200, 400];
    let rows = fig1(scale, &costs);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{} cyc", r.cost),
                format!("{:+.2}%", r.overhead_pct),
            ]
        })
        .collect();
    print!("{}", render_table(&["workload", "per-entry cost", "slowdown"], &table));
    println!("\nExpected shape: overhead scales with per-entry cost and OS-entry");
    println!("frequency — apache suffers most, compute least.");
}
