//! Regenerates Figure 1: runtime overhead of dynamic software
//! instrumentation for all possible OS off-loading points.
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/fig1.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig1 [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, render_table};
use osoffload_system::experiments::fig1_with;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Figure 1: overhead of software-instrumenting every OS entry point");
    println!("(off-loading disabled; overhead relative to uninstrumented baseline)\n");
    let costs = [50u64, 100, 200, 400];
    let rows = harness::run("fig1", scale, &opts, |ev| fig1_with(scale, &costs, ev));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{} cyc", r.cost),
                format!("{:+.2}%", r.overhead_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["workload", "per-entry cost", "slowdown"], &table)
    );
    println!("\nExpected shape: overhead scales with per-entry cost and OS-entry");
    println!("frequency — apache suffers most, compute least.");
}
