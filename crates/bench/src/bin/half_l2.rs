//! Regenerates the §V-B cache-budget comparison: off-loading with two
//! half-size (512 KB) L2s vs two full-size (1 MB) L2s, both normalized
//! to the single-core 1 MB baseline.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin half_l2 [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::experiments::half_l2;

fn main() {
    let scale = scale_from_args();
    println!("Section V-B: equal-silicon comparison (N = 100)\n");
    let rows = half_l2(scale, &[0, 100, 500, 1_000, 5_000]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{} cyc", r.latency),
                format!("{:.3}", r.full_l2),
                format!("{:.3}", r.half_l2),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["workload", "latency", "2 x 1 MB L2", "2 x 512 KB L2"],
            &table
        )
    );
    println!("\nPaper claim: even the half-size-L2 off-loading model can beat the");
    println!("1 MB single-core baseline when the off-loading latency is under ~1,000 cycles.");
}
