//! The "Figure 6" many-core campaign: N user cores × M OS cores per
//! workload group under every dispatch policy (HI, N=100, 1,000-cycle
//! overhead, 500-cycle cold penalty).
//!
//! The paper's scalability study (§V-C) stops at 4 user cores sharing a
//! single OS core; this sweep extends it to the ratios the paper's
//! conclusion speculates about, and separates the dispatch policies by
//! their queueing-delay tails and OS-core imbalance.
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/fig6_scalability.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig6_scalability [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, pct, render_table};
use osoffload_system::experiments::fig6_scalability_with;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("\"Figure 6\": N user x M OS cores per dispatch policy (HI, N=100, 1,000 cyc, 500-cyc cold penalty)\n");
    let rows = harness::run("fig6_scalability", scale, &opts, |ev| {
        fig6_scalability_with(scale, ev)
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.dispatch.clone(),
                format!("{}:{}", r.user_cores, r.os_cores),
                format!("{:.3}", r.throughput),
                format!("{:.0} cyc", r.mean_queue_delay),
                format!("{} cyc", r.p50_queue_delay),
                format!("{} cyc", r.p95_queue_delay),
                format!("{} cyc", r.p99_queue_delay),
                pct(r.mean_os_utilisation),
                pct(r.max_os_utilisation),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "dispatch",
                "ratio",
                "IPC",
                "mean delay",
                "p50",
                "p95",
                "p99",
                "mean OS util",
                "max OS util"
            ],
            &table
        )
    );
    println!("\nBeyond the paper: §V-C ends at 4:1. The delay tails (p95/p99) and the");
    println!("mean-vs-max utilisation gap show where each dispatch policy stops scaling.");
}
