//! Regenerates Figure 4: normalized IPC relative to the uni-processor
//! baseline when varying the off-loading overhead (curves) and the
//! switch trigger threshold N (x-axis); one panel per workload group.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig4 [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args, spark};
use osoffload_system::experiments::{fig4, FIG4_LATENCIES, FIG4_THRESHOLDS};

fn main() {
    let scale = scale_from_args();
    println!("Figure 4: normalized IPC vs threshold N, one curve per one-way latency\n");
    let cells = fig4(scale);
    for workload in ["apache", "specjbb2005", "derby", "compute"] {
        println!("--- {workload} ---");
        let headers: Vec<String> = std::iter::once("latency \\ N".to_string())
            .chain(FIG4_THRESHOLDS.iter().map(|n| format!("{n}")))
            .chain(std::iter::once("shape".to_string()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let table: Vec<Vec<String>> = FIG4_LATENCIES
            .iter()
            .map(|&lat| {
                let values: Vec<f64> = FIG4_THRESHOLDS
                    .iter()
                    .map(|&n| {
                        cells
                            .iter()
                            .find(|c| c.workload == workload && c.latency == lat && c.threshold == n)
                            .expect("full grid")
                            .normalized_ipc
                    })
                    .collect();
                std::iter::once(format!("{lat} cyc"))
                    .chain(values.iter().map(|v| format!("{v:.3}")))
                    .chain(std::iter::once(spark(&values, 0.9, 1.4)))
                    .collect()
            })
            .collect();
        print!("{}", render_table(&header_refs, &table));
        println!();
    }
    println!("Expected shapes: lower latency dominates; optimum at small nonzero N;");
    println!("N=0 below N=100 (coherence); SPECjbb never profits at 5,000 cycles.");
}
