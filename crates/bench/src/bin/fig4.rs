//! Regenerates Figure 4: normalized IPC relative to the uni-processor
//! baseline when varying the off-loading overhead (curves) and the
//! switch trigger threshold N (x-axis); one panel per workload group.
//!
//! Runs its simulation grid (the largest of the figures) on the
//! parallel runner and archives `results/fig4.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig4 [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, render_table, spark};
use osoffload_system::experiments::{fig4_grid_with, FIG4_LATENCIES, FIG4_THRESHOLDS};

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Figure 4: normalized IPC vs threshold N, one curve per one-way latency\n");
    let cells = harness::run("fig4", scale, &opts, |ev| {
        fig4_grid_with(scale, FIG4_LATENCIES, FIG4_THRESHOLDS, ev)
    });
    for workload in ["apache", "specjbb2005", "derby", "compute"] {
        println!("--- {workload} ---");
        let headers: Vec<String> = std::iter::once("latency \\ N".to_string())
            .chain(FIG4_THRESHOLDS.iter().map(|n| format!("{n}")))
            .chain(std::iter::once("shape".to_string()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let table: Vec<Vec<String>> = FIG4_LATENCIES
            .iter()
            .map(|&lat| {
                let values: Vec<f64> = FIG4_THRESHOLDS
                    .iter()
                    .map(|&n| {
                        cells
                            .iter()
                            .find(|c| {
                                c.workload == workload && c.latency == lat && c.threshold == n
                            })
                            .expect("full grid")
                            .normalized_ipc
                    })
                    .collect();
                std::iter::once(format!("{lat} cyc"))
                    .chain(values.iter().map(|v| format!("{v:.3}")))
                    .chain(std::iter::once(spark(&values, 0.9, 1.4)))
                    .collect()
            })
            .collect();
        print!("{}", render_table(&header_refs, &table));
        println!();
    }
    println!("Expected shapes: lower latency dominates; optimum at small nonzero N;");
    println!("N=0 below N=100 (coherence); SPECjbb never profits at 5,000 cycles.");
}
