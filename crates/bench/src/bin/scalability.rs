//! Regenerates the §V-C scalability study: 1, 2 and 4 user cores sharing
//! a single OS core (SPECjbb2005, N=100, 1,000-cycle overhead).
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/scalability.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin scalability [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, pct, render_table};
use osoffload_system::experiments::scalability_with;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Section V-C: user-core scaling against one OS core (SPECjbb, N=100, 1,000 cyc)\n");
    let rows = harness::run("scalability", scale, &opts, |ev| {
        scalability_with(scale, ev)
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}:1", r.user_cores),
                format!("{:.0} cyc", r.mean_queue_delay),
                format!("{} cyc", r.p95_queue_delay),
                pct(r.os_core_busy_frac),
                format!("{:.3}", r.scaling_efficiency),
                format!("{:+.1}%", (r.speedup_vs_no_offload - 1.0) * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "ratio",
                "mean queue delay",
                "p95 queue delay",
                "OS-core busy",
                "scaling eff.",
                "vs no-offload"
            ],
            &table
        )
    );
    println!("\nPaper reference: 2:1 adds ~1,348-cycle queueing (+4.5% aggregate);");
    println!("4:1 queueing explodes past 25,000 cycles and throughput drops.");
}
