//! Regenerates Table III: percentage of total execution time spent on
//! the OS core using selective migration based on threshold N
//! (5,000-cycle off-loading overhead).
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/table3.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin table3 [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, pct, render_table};
use osoffload_system::experiments::{table3_with, TABLE3_THRESHOLDS};

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Table III: OS-core utilisation vs threshold N (5,000-cycle overhead)\n");
    let rows = harness::run("table3", scale, &opts, |ev| table3_with(scale, ev));
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(TABLE3_THRESHOLDS.iter().map(|n| format!("N={n}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.workload.clone())
                .chain(r.utilization.iter().map(|&(_, u)| pct(u)))
                .collect()
        })
        .collect();
    print!("{}", render_table(&header_refs, &table));
    println!("\nPaper reference (N=100..10,000+): Apache 45.75..17.68%, SPECjbb 34.48..14.79%, Derby 8.2..0.2%.");
}
