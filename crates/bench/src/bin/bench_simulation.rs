//! Perf-regression bench for the simulation hot path.
//!
//! Times reference Figure 4 / Table III configurations best-of-N plus the
//! whole Figure 4 quick sweep (sequential, single-threaded, so numbers are
//! comparable across commits) — scalar and through the lane engine
//! (`run_lanes` at the runner's auto width) — prints a table, and archives
//! `results/BENCH_simulation.json`. Scalar and lane sweep reps are
//! interleaved so ambient machine drift hits both sides equally instead
//! of biasing the reported speedup.
//!
//! Modes:
//!
//! * `bench_simulation [quick|full|paper]` — measure and archive.
//! * `--before=PATH` — embed a previous run's numbers as the "before"
//!   section and report speedups against them.
//! * `--check=PATH` — CI gate: compare the measured *lane* sweep time
//!   (the path the runner actually takes) against the `baseline_ms`
//!   recorded in PATH and exit non-zero on a >20% regression.
//!
//! No external dependencies: timing via `std::time::Instant`, JSON written
//! and scanned by hand.

use osoffload_bench::render_table;
use osoffload_system::experiments::{
    fig4_grid_with, simulate, single_config, Scale, FIG4_LATENCIES, FIG4_THRESHOLDS,
};
use osoffload_system::{run_lanes, PolicyKind, SystemConfig};
use osoffload_workload::Profile;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Regression factor the CI gate tolerates (>20% slower fails).
const MAX_REGRESSION_FACTOR: f64 = 1.2;

struct PointSpec {
    name: &'static str,
    profile: fn() -> Profile,
    policy: PolicyKind,
    latency: u64,
}

/// Reference single-run configurations: three Figure 4 points spanning
/// the latency/threshold grid plus two Table III utilisation points.
const POINTS: &[PointSpec] = &[
    PointSpec {
        name: "fig4_apache_n1000_lat1000",
        profile: Profile::apache,
        policy: PolicyKind::HardwarePredictor { threshold: 1_000 },
        latency: 1_000,
    },
    PointSpec {
        name: "fig4_specjbb_n100_lat100",
        profile: Profile::specjbb,
        policy: PolicyKind::HardwarePredictor { threshold: 100 },
        latency: 100,
    },
    PointSpec {
        name: "fig4_compute_baseline",
        profile: Profile::blackscholes,
        policy: PolicyKind::Baseline,
        latency: 0,
    },
    PointSpec {
        name: "table3_derby_n100_lat5000",
        profile: Profile::derby,
        policy: PolicyKind::HardwarePredictor { threshold: 100 },
        latency: 5_000,
    },
    PointSpec {
        name: "table3_specjbb_n10000_lat5000",
        profile: Profile::specjbb,
        policy: PolicyKind::HardwarePredictor { threshold: 10_000 },
        latency: 5_000,
    },
];

struct Args {
    scale: Scale,
    scale_word: &'static str,
    out_dir: PathBuf,
    before: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_simulation [quick|full|paper] [--out=DIR] [--before=PATH] [--check=PATH]"
    );
    eprintln!("       --before=PATH  embed PATH's numbers as the 'before' section");
    eprintln!("       --check=PATH   CI gate: fail on >20% regression vs PATH's baseline_ms");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::quick(),
        scale_word: "quick",
        out_dir: PathBuf::from("results"),
        before: None,
        check: None,
    };
    for arg in std::env::args().skip(1) {
        if let Some(scale) = Scale::from_arg(&arg) {
            args.scale = scale;
            args.scale_word = match arg.trim_start_matches("--") {
                "quick" => "quick",
                "full" => "full",
                _ => "paper",
            };
        } else if let Some(dir) = arg.strip_prefix("--out=") {
            args.out_dir = PathBuf::from(dir);
        } else if let Some(path) = arg.strip_prefix("--before=") {
            args.before = Some(PathBuf::from(path));
        } else if let Some(path) = arg.strip_prefix("--check=") {
            args.check = Some(PathBuf::from(path));
        } else {
            eprintln!("bench_simulation: unknown argument {arg:?}");
            usage();
        }
    }
    args
}

/// Best-of-N wall time of `f` in milliseconds (one untimed warm pass).
fn best_of_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < best {
            best = ms;
        }
    }
    best
}

/// Scans `json` for `"key": <number>` and returns the first match.
fn scan_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scans `json` for point `name`'s `best_ms` value (the first `best_ms`
/// key following the name string).
fn scan_point_ms(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"{name}\""))?;
    scan_number(&json[at..], "best_ms")
}

fn main() {
    let args = parse_args();
    let point_reps = 5;
    let sweep_reps = 3;

    eprintln!(
        "[bench_simulation] scale={} point_reps={point_reps} sweep_reps={sweep_reps}",
        args.scale_word
    );

    let mut point_ms = Vec::new();
    for p in POINTS {
        let ms = best_of_ms(point_reps, || {
            simulate(single_config(
                (p.profile)(),
                p.policy,
                p.latency,
                1,
                args.scale,
            ))
        });
        eprintln!("[bench_simulation] {}: {ms:.1} ms", p.name);
        point_ms.push(ms);
    }

    // Record the sweep's configurations once (untimed) so the lane side
    // replays exactly the grid the scalar driver runs. The recording
    // pass evaluates a truncated stand-in per point only to satisfy the
    // driver's report plumbing.
    let mut grid: Vec<SystemConfig> = Vec::new();
    {
        let mut record = |cfg: SystemConfig| {
            grid.push(cfg.clone());
            simulate(SystemConfig {
                instructions: 1_000,
                warmup: 0,
                ..cfg
            })
        };
        let _ = fig4_grid_with(args.scale, FIG4_LATENCIES, FIG4_THRESHOLDS, &mut record);
    }

    // Interleaved best-of: one warm pass each, then scalar/lane pairs
    // back to back, so a noisy neighbour slows both sides of the ratio.
    const LANE_WIDTH: usize = 4;
    let mut sweep_ms = f64::INFINITY;
    let mut lanes_ms = f64::INFINITY;
    black_box(fig4_grid_with(
        args.scale,
        FIG4_LATENCIES,
        FIG4_THRESHOLDS,
        &mut simulate,
    ));
    black_box(run_lanes(&grid, LANE_WIDTH).expect("grid configs are valid"));
    for _ in 0..sweep_reps {
        let start = Instant::now();
        black_box(fig4_grid_with(
            args.scale,
            FIG4_LATENCIES,
            FIG4_THRESHOLDS,
            &mut simulate,
        ));
        sweep_ms = sweep_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        black_box(run_lanes(&grid, LANE_WIDTH).expect("grid configs are valid"));
        lanes_ms = lanes_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let speedup_lanes = sweep_ms / lanes_ms;
    eprintln!(
        "[bench_simulation] fig4_{}_sweep: scalar {sweep_ms:.1} ms, \
         lanes={LANE_WIDTH} {lanes_ms:.1} ms ({speedup_lanes:.2}x)",
        args.scale_word
    );

    let before_json = args.before.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("--before={}: {e}", p.display()))
    });
    let before_sweep = before_json
        .as_ref()
        .and_then(|j| scan_number(j, "fig4_quick_sweep_ms"));

    let mut rows = Vec::new();
    for (p, &ms) in POINTS.iter().zip(&point_ms) {
        let before = before_json.as_ref().and_then(|j| scan_point_ms(j, p.name));
        rows.push(vec![
            p.name.to_string(),
            before.map_or_else(|| "-".into(), |b| format!("{b:.1}")),
            format!("{ms:.1}"),
            before.map_or_else(|| "-".into(), |b| format!("{:.2}x", b / ms)),
        ]);
    }
    rows.push(vec![
        format!("fig4_{}_sweep", args.scale_word),
        before_sweep.map_or_else(|| "-".into(), |b| format!("{b:.1}")),
        format!("{sweep_ms:.1}"),
        before_sweep.map_or_else(|| "-".into(), |b| format!("{:.2}x", b / sweep_ms)),
    ]);
    rows.push(vec![
        format!("fig4_{}_sweep_lanes{LANE_WIDTH}", args.scale_word),
        "-".into(),
        format!("{lanes_ms:.1}"),
        format!("{speedup_lanes:.2}x vs scalar"),
    ]);
    println!(
        "{}",
        render_table(&["config", "before ms", "after ms", "speedup"], &rows)
    );

    // ---- archive JSON ----
    let mut json = String::from("{\n  \"name\": \"bench_simulation\",\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", args.scale_word));
    json.push_str(&format!(
        "  \"point_reps\": {point_reps},\n  \"sweep_reps\": {sweep_reps},\n"
    ));
    let section = |points: &[(String, f64)], sweep: f64| {
        let mut s = String::from("{\n    \"points\": [\n");
        for (i, (name, ms)) in points.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"name\": \"{name}\", \"best_ms\": {ms:.3}}}{}\n",
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ],\n    \"fig4_quick_sweep_ms\": {sweep:.3}\n  }}"
        ));
        s
    };
    let current: Vec<(String, f64)> = POINTS
        .iter()
        .zip(&point_ms)
        .map(|(p, &ms)| (p.name.to_string(), ms))
        .collect();
    if let Some(bj) = &before_json {
        let before_points: Vec<(String, f64)> = POINTS
            .iter()
            .filter_map(|p| scan_point_ms(bj, p.name).map(|ms| (p.name.to_string(), ms)))
            .collect();
        if let Some(bs) = before_sweep {
            json.push_str("  \"before\": ");
            json.push_str(&section(&before_points, bs));
            json.push_str(",\n");
            json.push_str(&format!(
                "  \"speedup_fig4_quick_sweep\": {:.3},\n",
                bs / sweep_ms
            ));
        }
    }
    json.push_str("  \"after\": ");
    json.push_str(&section(&current, sweep_ms));
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"lanes\": {{\"width\": {LANE_WIDTH}, \"fig4_quick_sweep_lanes_ms\": {lanes_ms:.3}, \"speedup_lanes_vs_scalar\": {speedup_lanes:.3}}},\n"
    ));
    json.push_str(
        "  \"notes\": \"scalar and lane sweep reps interleaved to cancel ambient drift; \
         executor claim index / watchdog slots cache-line padded (false-sharing fix) — \
         single-worker sweep time unchanged within noise, padding is for multi-worker hosts\",\n",
    );
    json.push_str(&format!(
        "  \"gate\": {{\"metric\": \"fig4_quick_sweep_lanes_ms\", \"baseline_ms\": {lanes_ms:.3}, \"max_regression_factor\": {MAX_REGRESSION_FACTOR}}}\n}}\n"
    ));

    std::fs::create_dir_all(&args.out_dir).expect("create out dir");
    let out_path = args.out_dir.join("BENCH_simulation.json");
    std::fs::write(&out_path, &json).expect("write results JSON");
    eprintln!("[bench_simulation] wrote {}", out_path.display());

    // ---- CI gate ----
    if let Some(check) = &args.check {
        let baseline = std::fs::read_to_string(check)
            .ok()
            .and_then(|j| scan_number(&j, "baseline_ms"))
            .unwrap_or_else(|| {
                eprintln!(
                    "[bench_simulation] GATE ERROR: no baseline_ms in {}",
                    check.display()
                );
                std::process::exit(1);
            });
        let limit = baseline * MAX_REGRESSION_FACTOR;
        if lanes_ms > limit {
            eprintln!(
                "[bench_simulation] GATE FAIL: lane sweep {lanes_ms:.1} ms > {limit:.1} ms \
                 (baseline {baseline:.1} ms x {MAX_REGRESSION_FACTOR})"
            );
            std::process::exit(1);
        }
        eprintln!(
            "[bench_simulation] gate ok: lane sweep {lanes_ms:.1} ms <= {limit:.1} ms \
             (baseline {baseline:.1} ms x {MAX_REGRESSION_FACTOR})"
        );
    }
}
