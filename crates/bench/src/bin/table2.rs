//! Regenerates the paper's Table II: simulator parameters, as actually
//! configured in this reproduction's memory system and core model.
//! Archives the table as `results/table2.json`.

use osoffload_bench::{harness, render_table};
use osoffload_cpu::{CoreParams, Tlb};
use osoffload_mem::MemConfig;

fn main() {
    let (_, opts) = harness::parse_args();
    println!("Table II: simulator parameters (paper design point)\n");
    let mem = MemConfig::paper_baseline(2);
    let core = CoreParams::paper_default();
    let tlb = Tlb::paper_default();
    let rows = vec![
        vec!["ISA".into(), "UltraSPARC III (modelled abstractly)".into()],
        vec![
            "Processor pipeline".into(),
            format!("in-order, {} cycle/insn base", core.base_cycles_per_instr),
        ],
        vec!["Register windows".into(), core.register_windows.to_string()],
        vec![
            "TLB".into(),
            format!("{} entry, fully associative", tlb.capacity()),
        ],
        vec![
            "L1 I-cache".into(),
            format!("{}, {}-cycle", mem.l1i, mem.l1_latency),
        ],
        vec![
            "L1 D-cache".into(),
            format!("{}, {}-cycle", mem.l1d, mem.l1_latency),
        ],
        vec![
            "L2 cache".into(),
            format!("{}, {}-cycle", mem.l2, mem.l2_latency),
        ],
        vec![
            "Line size".into(),
            format!("{} bytes", osoffload_mem::LINE_BYTES),
        ],
        vec![
            "Coherence".into(),
            format!(
                "directory MESI (lookup {} cyc, c2c {} cyc, inval {} cyc)",
                mem.interconnect.directory_lookup,
                mem.interconnect.cache_to_cache,
                mem.interconnect.invalidation
            ),
        ],
        vec![
            "Main memory".into(),
            format!("{} cycle uniform latency", mem.dram_latency),
        ],
    ];
    print!("{}", render_table(&["Parameter", "Value"], &rows));
    harness::write_static("table2", &["Parameter", "Value"], &rows, &opts);
}
