//! Regenerates the paper's Table I: number of distinct system calls in
//! various operating systems — the scale argument for why manual
//! instrumentation of every entry point is infeasible (§II). Archives
//! the table as `results/table1.json`.

use osoffload_bench::{harness, render_table};
use osoffload_workload::OS_SYSCALL_TABLE;

fn main() {
    let (_, opts) = harness::parse_args();
    println!("Table I: Number of distinct system calls in various operating systems\n");
    let rows: Vec<Vec<String>> = OS_SYSCALL_TABLE
        .iter()
        .map(|r| vec![r.os.to_string(), r.syscalls.to_string()])
        .collect();
    print!(
        "{}",
        render_table(&["Operating system", "# Syscalls"], &rows)
    );
    println!(
        "\nModelled synthetic-kernel entry points: {}",
        osoffload_workload::CATALOG.len()
    );
    harness::write_static("table1", &["Operating system", "# Syscalls"], &rows, &opts);
}
