//! Predictor design ablation: the full §III-A predictor vs variants with
//! one idea removed each — no per-AState table (global-only), and no
//! confidence filter / fallback (infinite last-value) — plus the two
//! hardware organisations. Attributes the predictor's accuracy and the
//! resulting throughput to its parts.
//!
//! Runs its simulation points on the parallel runner and archives
//! `results/ablation.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin ablation [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, pct, render_table};
use osoffload_system::experiments::single_config;
use osoffload_system::{PolicyKind, SimReport};
use osoffload_workload::Profile;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Predictor design ablation (Apache, N = 500, 1,000-cycle migration)\n");
    let variants: &[(&str, PolicyKind)] = &[
        (
            "full CAM (paper)",
            PolicyKind::HardwarePredictor { threshold: 500 },
        ),
        (
            "direct-mapped",
            PolicyKind::HardwarePredictorDirectMapped { threshold: 500 },
        ),
        (
            "set-assoc 64x4",
            PolicyKind::HardwarePredictorSetAssoc {
                threshold: 500,
                sets: 64,
                ways: 4,
            },
        ),
        (
            "global-only",
            PolicyKind::HardwarePredictorGlobalOnly { threshold: 500 },
        ),
        (
            "last-value (no confidence)",
            PolicyKind::HardwarePredictorLastValue { threshold: 500 },
        ),
        ("oracle", PolicyKind::Oracle { threshold: 500 }),
    ];
    let (base, runs): (SimReport, Vec<SimReport>) = harness::run("ablation", scale, &opts, |ev| {
        let base = ev(single_config(
            Profile::apache(),
            PolicyKind::Baseline,
            0,
            1,
            scale,
        ));
        let runs = variants
            .iter()
            .map(|&(_, policy)| ev(single_config(Profile::apache(), policy, 1_000, 1, scale)))
            .collect();
        (base, runs)
    });
    let mut table = Vec::new();
    for ((name, _), r) in variants.iter().zip(&runs) {
        let (exact, close) = r
            .predictor
            .as_ref()
            .map(|p| (pct(p.exact), pct(p.within_5pct)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        let bin1000 = if r.predictor.is_some() {
            r.binary_accuracy
                .iter()
                .find(|b| b.threshold == 1_000)
                .map(|b| pct(b.accuracy))
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into()
        };
        table.push(vec![
            name.to_string(),
            format!("{:.3}", r.normalized_to(&base)),
            exact,
            close,
            bin1000,
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "variant",
                "normalized tput",
                "exact",
                "within ±5%",
                "binary@1000"
            ],
            &table
        )
    );
    println!("\nReading: the per-AState table supplies most of the exactness; the");
    println!("confidence/fallback pair mainly protects noisy entries; the 200-entry");
    println!("CAM tracks the unbounded last-value table closely (the paper's");
    println!("\"close to optimal (infinite history) performance\" claim).");
}
