//! Dumps the per-invocation trace of one run as CSV (stdout) plus a
//! per-entry-point summary table (stderr), for off-line analysis.
//!
//! Usage:
//! `cargo run --release -p osoffload-bench --bin invocation_trace [quick|full|paper] > trace.csv`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    let cfg = SystemConfig::builder()
        .profile(Profile::apache())
        .policy(PolicyKind::HardwarePredictor { threshold: 500 })
        .migration_latency(1_000)
        .instructions(scale.instructions)
        .warmup(scale.warmup)
        .seed(scale.seed)
        .trace(50_000)
        .build();
    let (report, trace) = Simulation::new(cfg).run_traced();

    // CSV to stdout (pipe into a file), human summary to stderr.
    print!("{}", trace.to_csv());

    eprintln!("{report}");
    eprintln!("{trace}\n");
    let rows: Vec<Vec<String>> = trace
        .summarize()
        .iter()
        .map(|s| {
            vec![
                s.syscall.to_string(),
                s.count.to_string(),
                s.offloaded.to_string(),
                format!("{:.0}", s.mean_len),
                format!("{:.0}", s.mean_abs_error),
                format!("{:.0}", s.mean_cycles),
            ]
        })
        .collect();
    eprint!(
        "{}",
        render_table(
            &[
                "syscall",
                "count",
                "offloaded",
                "mean len",
                "mean |err|",
                "mean cycles"
            ],
            &rows
        )
    );
}
