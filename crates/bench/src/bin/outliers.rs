//! Per-benchmark breakdown of the compute group. The paper averages its
//! six compute applications into one curve but promises to "note any
//! outlier behavior" (§II); this table shows each one individually so
//! outliers (e.g. the cache-hostile canneal) are visible.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin outliers [quick|full|paper]`

use osoffload_bench::{pct, render_table, scale_from_args};
use osoffload_system::experiments::run_single;
use osoffload_system::PolicyKind;
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    println!("Compute-group breakdown (HI, N = 1,000, 1,000-cycle migration)\n");
    let rows: Vec<Vec<String>> = Profile::all_compute()
        .into_iter()
        .map(|p| {
            let base = run_single(p.clone(), PolicyKind::Baseline, 0, 1, scale);
            let r = run_single(
                p.clone(),
                PolicyKind::HardwarePredictor { threshold: 1_000 },
                1_000,
                1,
                scale,
            );
            vec![
                p.name.to_string(),
                format!("{:.3}", base.throughput),
                pct(base.l1d_hit_rate),
                pct(base.user_branch_accuracy),
                format!("{:.3}", r.normalized_to(&base)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "baseline IPC",
                "L1D hit",
                "branch acc",
                "offload (norm)"
            ],
            &rows
        )
    );
    println!("\nExpected: all within a few percent of 1.0 (the paper's averaged curve);");
    println!("the memory-bound members (canneal, mcf) have far lower baseline IPC but");
    println!("the same insensitivity to off-loading.");
}
