//! Ablation of the off-load transport (§II "Migration Implementations"):
//! full thread migration (the paper's scheme, user core reserved for the
//! round trip) vs RPC-style message passing (user core freed — the
//! design point the paper notes "we do not consider ... in this study").
//!
//! Usage: `cargo run --release -p osoffload-bench --bin mechanism [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::experiments::mechanism_ablation;

fn main() {
    let scale = scale_from_args();
    println!("Off-load transport ablation (N = 100)\n");
    let rows = mechanism_ablation(scale, &[100, 1_000, 5_000]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{} cyc", r.latency),
                format!("{:.3}", r.thread_migration),
                format!("{:.3}", r.remote_call),
                format!(
                    "{:+.1}%",
                    (r.remote_call / r.thread_migration - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "latency",
                "thread migration",
                "remote call",
                "RPC gain"
            ],
            &table
        )
    );
    println!("\nRPC frees the user core during remote execution, letting the sibling");
    println!("thread overlap — the benefit grows with OS share and migration latency.");
}
