//! Regenerates Figure 5: normalized throughput for off-loading with
//! static manual instrumentation (SI), dynamic software instrumentation
//! (DI), and the hardware predictor (HI), at the conservative
//! (5,000-cycle) and aggressive (100-cycle) migration design points.
//!
//! Runs its simulation grid on the parallel runner and archives
//! `results/fig5.json`.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig5 [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]`

use osoffload_bench::{harness, render_table};
use osoffload_system::experiments::fig5_with;

fn main() {
    let (scale, opts) = harness::parse_args();
    println!("Figure 5: SI vs DI vs HI, normalized to the single-core baseline\n");
    let rows = harness::run("fig5", scale, &opts, |ev| fig5_with(scale, ev));
    for label in ["conservative", "aggressive"] {
        println!("--- {label} ---");
        let table: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.latency_label == label)
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.policy.clone(),
                    format!("{:.3}", r.normalized),
                    r.chosen_threshold
                        .map(|n| format!("N={n}"))
                        .unwrap_or_else(|| "profile".to_string()),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(&["workload", "policy", "normalized", "threshold"], &table)
        );
        println!();
    }
    println!("Paper headline: HI up to 18% over baseline, 13% over SI, 23% over DI.");
}
