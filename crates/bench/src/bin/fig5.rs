//! Regenerates Figure 5: normalized throughput for off-loading with
//! static manual instrumentation (SI), dynamic software instrumentation
//! (DI), and the hardware predictor (HI), at the conservative
//! (5,000-cycle) and aggressive (100-cycle) migration design points.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin fig5 [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_system::experiments::fig5;

fn main() {
    let scale = scale_from_args();
    println!("Figure 5: SI vs DI vs HI, normalized to the single-core baseline\n");
    let rows = fig5(scale);
    for label in ["conservative", "aggressive"] {
        println!("--- {label} ---");
        let table: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.latency_label == label)
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.policy.clone(),
                    format!("{:.3}", r.normalized),
                    r.chosen_threshold
                        .map(|n| format!("N={n}"))
                        .unwrap_or_else(|| "profile".to_string()),
                ]
            })
            .collect();
        print!("{}", render_table(&["workload", "policy", "normalized", "threshold"], &table));
        println!();
    }
    println!("Paper headline: HI up to 18% over baseline, 13% over SI, 23% over DI.");
}
