//! Energy/EDP study — the paper's stated future work ("the applicability
//! of the predictor for OS energy optimizations"): score baseline vs
//! off-loading under a homogeneous CMP and under a Mogul-style
//! heterogeneous CMP whose OS core runs at 0.6x frequency and 0.3x power.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin energy [quick|full|paper]`

use osoffload_bench::{render_table, scale_from_args};
use osoffload_energy::{evaluate, EnergyParams};
use osoffload_system::{PolicyKind, Simulation, SystemConfig};
use osoffload_workload::Profile;

fn main() {
    let scale = scale_from_args();
    println!("Energy / EDP extension (HI, N = 100, 1,000-cycle migration)\n");

    let mut table = Vec::new();
    for profile in [Profile::apache(), Profile::specjbb(), Profile::derby()] {
        let run = |policy: PolicyKind, slowdown: u64| {
            Simulation::new(
                SystemConfig::builder()
                    .profile(profile.clone())
                    .policy(policy)
                    .migration_latency(1_000)
                    .os_core_slowdown_milli(slowdown)
                    .instructions(scale.instructions)
                    .warmup(scale.warmup)
                    .seed(scale.seed)
                    .build(),
            )
            .run()
        };
        let hi = PolicyKind::HardwarePredictor { threshold: 100 };

        let baseline = run(PolicyKind::Baseline, 1_000);
        let base_energy = evaluate(&baseline, &EnergyParams::homogeneous());

        // Homogeneous: OS core is another aggressive core.
        let homo = run(hi, 1_000);
        let homo_energy = evaluate(&homo, &EnergyParams::homogeneous());

        // Heterogeneous: efficiency OS core — slower (simulated) and
        // cheaper (scored).
        let hetero_params = EnergyParams::heterogeneous();
        let hetero = run(hi, hetero_params.os_core.slowdown_milli);
        let hetero_energy = evaluate(&hetero, &hetero_params);

        for (label, report, energy) in [
            ("baseline", &baseline, &base_energy),
            ("HI homogeneous", &homo, &homo_energy),
            ("HI efficient-OS-core", &hetero, &hetero_energy),
        ] {
            table.push(vec![
                profile.name.to_string(),
                label.to_string(),
                format!("{:.3}", report.throughput / baseline.throughput),
                format!("{:.2}", energy.nj_per_instruction),
                format!("{:.3}", energy.energy_normalized_to(&base_energy)),
                format!("{:.3}", energy.edp_normalized_to(&base_energy)),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "configuration",
                "perf (norm)",
                "nJ/insn",
                "energy (norm)",
                "EDP (norm)"
            ],
            &table
        )
    );
    println!("\nExpected shape: the efficiency OS core trades a little throughput for a");
    println!("visible energy (and usually EDP) win on OS-heavy workloads — the");
    println!("Mogul-style case the paper cites as motivation (§I, §VI-B).");
}
