//! Prints the workload-model calibration table: what each profile
//! actually generates vs its analytic expectations and the paper's
//! reported characteristics — the mechanical check behind DESIGN.md's
//! substitution argument.
//!
//! Usage: `cargo run --release -p osoffload-bench --bin calibration [quick|full|paper]`

use osoffload_bench::{pct, render_table, scale_from_args};
use osoffload_workload::{validate, Profile};

fn main() {
    let scale = scale_from_args();
    println!(
        "Workload-model calibration ({} generated instructions/profile)\n",
        scale.instructions
    );
    let rows: Vec<Vec<String>> = Profile::all_server()
        .into_iter()
        .chain(Profile::all_compute())
        .map(|p| {
            let v = validate(&p, scale.instructions, scale.seed);
            vec![
                v.name.to_string(),
                pct(v.realized_os_share),
                pct(v.expected_os_share),
                format!("{:.0}", v.mean_invocation_len),
                pct(v.sub_100_frac),
                v.distinct_reg_images.to_string(),
                format!("{:.2}", v.user_mem_ratio),
                format!("{:.2}", v.user_branch_ratio),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "profile",
                "OS share",
                "expected",
                "mean inv",
                "<100 insn",
                "AStates",
                "mem/insn",
                "br/insn"
            ],
            &rows
        )
    );
    println!("\nPaper anchors: Apache/webservers can exceed half the instructions in");
    println!("the OS; SPECjbb ~1/3; compute negligible. Bounded AState diversity is");
    println!("what makes the 200-entry CAM sufficient (§III-A).");
}
