//! Shared helpers for the `osoffload-bench` experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md`'s experiment index). This library holds the
//! bits they share: scale-argument parsing and plain-text table
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use osoffload_system::experiments::Scale;

/// Parses the experiment scale from the process arguments.
///
/// Accepts `quick`, `full`, or `paper` (with or without a `--` prefix);
/// defaults to [`Scale::full`]. Unknown arguments abort with usage help
/// so a typo cannot silently fall back to a different experiment length.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first() {
        None => Scale::full(),
        Some(arg) => Scale::from_arg(arg).unwrap_or_else(|| {
            eprintln!("usage: <bin> [quick|full|paper]   (default: full)");
            std::process::exit(2);
        }),
    }
}

/// Renders rows as an aligned plain-text table with a header rule.
///
/// # Examples
///
/// ```
/// let table = osoffload_bench::render_table(
///     &["name", "value"],
///     &[vec!["alpha".to_string(), "1".to_string()]],
/// );
/// assert!(table.contains("alpha"));
/// assert!(table.contains("name"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:<w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Renders values as a unicode sparkline, scaled to `[lo, hi]`.
///
/// # Examples
///
/// ```
/// let s = osoffload_bench::spark(&[0.0, 0.5, 1.0], 0.0, 1.0);
/// assert_eq!(s.chars().count(), 3);
/// assert!(s.starts_with('▁') && s.ends_with('█'));
/// ```
pub fn spark(values: &[f64], lo: f64, hi: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let span = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Glue between the experiment binaries and the parallel runner.
///
/// Every ported binary follows the same shape: parse the scale word
/// plus runner flags, hand its `*_with` driver to [`harness::run`]
/// (which executes the simulation points concurrently, streams
/// progress to stderr, and archives a JSON results file under
/// `results/`), then print its table from the returned rows.
pub mod harness {
    use osoffload_runner::{report, run_driver, RunnerOptions};
    use osoffload_system::experiments::{Evaluator, Scale};

    /// Parses `[quick|full|paper]` plus the runner flags
    /// (`--workers=N`/`-jN`, `--retries=N`, `--quiet`, `--out=DIR`,
    /// `--telemetry`, `--trace-out=DIR`, `--profile`, `--journal=FILE`,
    /// `--resume=FILE`, `--resume-retry-failed`, `--deadline-ms=N`,
    /// `--backoff-ms=N`, `--canonical`, `--inject-faults=SEED`) from the
    /// process arguments. Unknown arguments abort with usage help.
    pub fn parse_args() -> (Scale, RunnerOptions) {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let (opts, rest) = RunnerOptions::parse_flags(&args);
        let scale = match rest.first() {
            None => Scale::full(),
            Some(arg) if rest.len() == 1 => Scale::from_arg(arg).unwrap_or_else(|| usage()),
            Some(_) => usage(),
        };
        (scale, opts)
    }

    fn usage() -> ! {
        eprintln!(
            "usage: <bin> [quick|full|paper] [--workers=N] [--retries=N] [--quiet] [--out=DIR]"
        );
        eprintln!("             [--telemetry] [--trace-out=DIR] [--profile] [--journal=FILE]");
        eprintln!("             [--resume=FILE] [--resume-retry-failed] [--deadline-ms=N]");
        eprintln!("             [--backoff-ms=N] [--canonical] [--inject-faults=SEED]");
        eprintln!("             [--lanes=N]");
        eprintln!("       (default scale: full; default workers: all hardware threads)");
        eprintln!("       --telemetry writes per-point Chrome traces + epoch metrics and");
        eprintln!("       runner self-profiling under results/telemetry/ (see TELEMETRY.md)");
        eprintln!("       --profile writes per-point cycle-attribution profiles (collapsed");
        eprintln!("       stacks + top-N tables) under results/profile/ (see TELEMETRY.md)");
        eprintln!("       --journal/--resume give crash-safe checkpointed campaigns");
        eprintln!("       (--resume-retry-failed re-attempts journaled failures), and");
        eprintln!("       --deadline-ms/--inject-faults add watchdogs and chaos testing");
        eprintln!("       (see ROBUSTNESS.md)");
        eprintln!("       --lanes picks the lane-pack width for tape-sharing sweeps");
        eprintln!("       (0 = auto, 1 = scalar path; see EXPERIMENTS.md)");
        std::process::exit(2);
    }

    /// Runs an experiment driver with its points executed in parallel,
    /// writes `<out_dir>/<name>.json`, and returns the driver's rows.
    ///
    /// If any point failed (panicked through all retries), the failures
    /// are listed on stderr — with the results file still recording
    /// every completed point — and the process exits with status 1.
    pub fn run<R>(
        name: &str,
        scale: Scale,
        opts: &RunnerOptions,
        driver: impl Fn(Evaluator<'_>) -> R,
    ) -> R {
        let (rows, sweep) = run_driver(name, scale.seed, opts, driver);
        match report::write_sweep(&sweep, &opts.out_dir) {
            Ok(path) => eprintln!(
                "[{name}] {} points in {:.1}s on {} workers -> {}",
                sweep.rows.len(),
                sweep.wall_ms / 1e3,
                sweep.workers,
                path.display()
            ),
            Err(e) => eprintln!("[{name}] could not write results file: {e}"),
        }
        if opts.telemetry {
            match report::write_runner_telemetry(&sweep, &opts.telemetry_dir()) {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("[{name}] wrote {}", p.display());
                    }
                }
                Err(e) => eprintln!("[{name}] could not write runner telemetry: {e}"),
            }
        }
        match rows {
            Some(rows) => rows,
            None => {
                for f in sweep.failures() {
                    match &f.outcome {
                        osoffload_runner::Outcome::Failed { panic, attempts } => eprintln!(
                            "[{name}] point {} FAILED after {attempts} attempt(s): {panic}",
                            f.id
                        ),
                        osoffload_runner::Outcome::TimedOut {
                            deadline_ms,
                            attempts,
                        } => eprintln!(
                            "[{name}] point {} TIMED OUT ({deadline_ms} ms deadline, {attempts} attempt(s))",
                            f.id
                        ),
                        osoffload_runner::Outcome::Ok(_) => {}
                    }
                }
                eprintln!(
                    "[{name}] {}/{} points failed; tables not assembled",
                    sweep.failures().count(),
                    sweep.rows.len()
                );
                std::process::exit(1);
            }
        }
    }

    /// Archives a static (no-simulation) table under `results/` with
    /// the same JSON envelope as a sweep.
    pub fn write_static(name: &str, headers: &[&str], rows: &[Vec<String>], opts: &RunnerOptions) {
        match report::write_static_table(name, headers, rows, &opts.out_dir) {
            Ok(path) => eprintln!("[{name}] wrote {}", path.display()),
            Err(e) => eprintln!("[{name}] could not write results file: {e}"),
        }
    }
}

/// Minimal micro-benchmark timing harness for the `benches/` targets.
///
/// The approved dependency set has no benchmarking framework, so the
/// bench targets (`harness = false`) drive this directly: adaptive
/// batching until a target wall-time is reached, then a ns/iter report
/// on stdout.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Re-export of the optimisation barrier used by benchmark bodies.
    pub use std::hint::black_box;

    /// Times `f` until roughly `target` of wall-clock has elapsed and
    /// returns the mean nanoseconds per iteration.
    pub fn time_fn<T>(target: Duration, mut f: impl FnMut() -> T) -> f64 {
        // Warm up caches, branch predictors, and lazy initialisation.
        for _ in 0..100 {
            black_box(f());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1_000u64;
        while elapsed < target {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 22);
        }
        elapsed.as_nanos() as f64 / iters as f64
    }

    /// Runs one named benchmark with the default 200 ms budget and
    /// prints a `name: N ns/iter` line.
    pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
        let ns = time_fn(Duration::from_millis(200), f);
        println!("{name}: {ns:.1} ns/iter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     long-header"));
        assert!(lines[2].starts_with("xxxx  1"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4575), "45.75%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn spark_scales_and_clamps() {
        let s = spark(&[-1.0, 0.0, 0.5, 1.0, 2.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[0], '▁', "below range clamps low");
        assert_eq!(chars[4], '█', "above range clamps high");
        assert!(chars[2] > chars[1] && chars[2] < chars[3]);
    }

    #[test]
    fn spark_flat_range_does_not_panic() {
        let s = spark(&[1.0, 1.0], 1.0, 1.0);
        assert_eq!(s.chars().count(), 2);
    }
}
