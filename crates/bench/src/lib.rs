//! Shared helpers for the `osoffload-bench` experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md`'s experiment index). This library holds the
//! bits they share: scale-argument parsing and plain-text table
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use osoffload_system::experiments::Scale;

/// Parses the experiment scale from the process arguments.
///
/// Accepts `quick`, `full`, or `paper` (with or without a `--` prefix);
/// defaults to [`Scale::full`]. Unknown arguments abort with usage help
/// so a typo cannot silently fall back to a different experiment length.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first() {
        None => Scale::full(),
        Some(arg) => Scale::from_arg(arg).unwrap_or_else(|| {
            eprintln!("usage: <bin> [quick|full|paper]   (default: full)");
            std::process::exit(2);
        }),
    }
}

/// Renders rows as an aligned plain-text table with a header rule.
///
/// # Examples
///
/// ```
/// let table = osoffload_bench::render_table(
///     &["name", "value"],
///     &[vec!["alpha".to_string(), "1".to_string()]],
/// );
/// assert!(table.contains("alpha"));
/// assert!(table.contains("name"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:<w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:<w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Renders values as a unicode sparkline, scaled to `[lo, hi]`.
///
/// # Examples
///
/// ```
/// let s = osoffload_bench::spark(&[0.0, 0.5, 1.0], 0.0, 1.0);
/// assert_eq!(s.chars().count(), 3);
/// assert!(s.starts_with('▁') && s.ends_with('█'));
/// ```
pub fn spark(values: &[f64], lo: f64, hi: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let span = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     long-header"));
        assert!(lines[2].starts_with("xxxx  1"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4575), "45.75%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn spark_scales_and_clamps() {
        let s = spark(&[-1.0, 0.0, 0.5, 1.0, 2.0], 0.0, 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[0], '▁', "below range clamps low");
        assert_eq!(chars[4], '█', "above range clamps high");
        assert!(chars[2] > chars[1] && chars[2] < chars[3]);
    }

    #[test]
    fn spark_flat_range_does_not_panic() {
        let s = spark(&[1.0, 1.0], 1.0, 1.0);
        assert_eq!(s.chars().count(), 2);
    }
}
