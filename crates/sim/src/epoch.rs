//! Epoch framework for coarse-grained adaptive mechanisms.
//!
//! The paper's dynamic threshold estimator (§III-B) operates on *epochs*:
//! fixed-length instruction intervals at whose boundaries the software
//! layer inspects performance counters and possibly reconfigures the
//! off-loading threshold. [`EpochClock`] tracks instruction progress and
//! reports boundary crossings; the policy logic that *reacts* to epochs
//! lives in `osoffload-core::tuner`.

use crate::cycle::Instret;
use core::fmt;

/// What happened when instructions were reported to an [`EpochClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochEvent {
    /// Still inside the current epoch.
    Within,
    /// One or more epoch boundaries were crossed. `first` is the index
    /// of the first epoch that just *completed* (starting from 0) and
    /// `count` is how many epochs completed in this advance — a single
    /// long privileged invocation can span several epochs, and adaptive
    /// mechanisms must see every boundary, not just the first.
    Boundary {
        /// Index of the first epoch completed by this advance.
        first: u64,
        /// Number of epochs completed by this advance (≥ 1).
        count: u64,
    },
}

impl EpochEvent {
    /// Number of boundaries this event represents (0 for [`Within`]).
    ///
    /// [`Within`]: EpochEvent::Within
    pub fn boundaries(self) -> u64 {
        match self {
            EpochEvent::Within => 0,
            EpochEvent::Boundary { count, .. } => count,
        }
    }
}

/// Tracks retired instructions against a configurable epoch length.
///
/// The epoch length can be changed at any boundary — the paper's estimator
/// starts with 25 M-instruction sampling epochs, runs 100 M-instruction
/// stable epochs, and doubles the stable length while the chosen threshold
/// remains optimal.
///
/// # Examples
///
/// ```
/// use osoffload_sim::{EpochClock, EpochEvent, Instret};
///
/// let mut clock = EpochClock::new(Instret::new(1000));
/// assert_eq!(clock.advance(Instret::new(999)), EpochEvent::Within);
/// assert_eq!(clock.advance(Instret::new(1)), EpochEvent::Boundary { first: 0, count: 1 });
/// // A single long advance can complete several epochs at once:
/// assert_eq!(clock.advance(Instret::new(2_500)), EpochEvent::Boundary { first: 1, count: 2 });
/// assert_eq!(clock.into_epoch(), Instret::new(500));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochClock {
    epoch_len: Instret,
    into_epoch: Instret,
    completed: u64,
    total: Instret,
}

impl EpochClock {
    /// Creates a clock with the given epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(epoch_len: Instret) -> Self {
        assert!(
            epoch_len > Instret::ZERO,
            "EpochClock: epoch length must be positive"
        );
        EpochClock {
            epoch_len,
            into_epoch: Instret::ZERO,
            completed: 0,
            total: Instret::ZERO,
        }
    }

    /// Reports `n` retired instructions; returns whether (and how many)
    /// boundaries were crossed.
    ///
    /// The engine advances a whole segment at a time, so a single long
    /// privileged invocation *can* span multiple epochs. Every crossed
    /// boundary is reported: the returned [`EpochEvent::Boundary`]
    /// carries the index of the first completed epoch and the number of
    /// epochs completed, and the remainder is carried into the next
    /// epoch. Shortening the epoch below accumulated progress likewise
    /// completes every now-covered epoch on the next advance rather than
    /// silently discarding the overshoot.
    pub fn advance(&mut self, n: Instret) -> EpochEvent {
        self.total += n;
        self.into_epoch += n;
        if self.into_epoch < self.epoch_len {
            return EpochEvent::Within;
        }
        let crossed = self.into_epoch.as_u64() / self.epoch_len.as_u64();
        let first = self.completed;
        self.completed += crossed;
        self.into_epoch = Instret::new(self.into_epoch.as_u64() % self.epoch_len.as_u64());
        EpochEvent::Boundary {
            first,
            count: crossed,
        }
    }

    /// Changes the epoch length, effective immediately.
    ///
    /// Progress within the current epoch is preserved; if the new length
    /// is already exceeded the next `advance` reports a boundary.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn set_epoch_len(&mut self, epoch_len: Instret) {
        assert!(
            epoch_len > Instret::ZERO,
            "EpochClock: epoch length must be positive"
        );
        self.epoch_len = epoch_len;
    }

    /// Current epoch length.
    pub fn epoch_len(&self) -> Instret {
        self.epoch_len
    }

    /// Number of epochs fully completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total instructions reported over the clock's lifetime.
    pub fn total(&self) -> Instret {
        self.total
    }

    /// Instructions into the current (incomplete) epoch.
    pub fn into_epoch(&self) -> Instret {
        self.into_epoch
    }

    /// Restarts the current epoch (progress returns to zero) without
    /// changing the epoch counter or total.
    pub fn restart_epoch(&mut self) {
        self.into_epoch = Instret::ZERO;
    }
}

impl fmt::Display for EpochClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} ({} / {} insn)",
            self.completed,
            self.into_epoch.as_u64(),
            self.epoch_len.as_u64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_fire_in_sequence() {
        let mut c = EpochClock::new(Instret::new(10));
        for i in 0..3u64 {
            for _ in 0..9 {
                assert_eq!(c.advance(Instret::new(1)), EpochEvent::Within);
            }
            assert_eq!(
                c.advance(Instret::new(1)),
                EpochEvent::Boundary { first: i, count: 1 }
            );
        }
        assert_eq!(c.completed(), 3);
        assert_eq!(c.total(), Instret::new(30));
    }

    #[test]
    fn overshoot_carries_into_next_epoch() {
        let mut c = EpochClock::new(Instret::new(10));
        assert_eq!(
            c.advance(Instret::new(15)),
            EpochEvent::Boundary { first: 0, count: 1 }
        );
        assert_eq!(c.into_epoch(), Instret::new(5));
        assert_eq!(
            c.advance(Instret::new(5)),
            EpochEvent::Boundary { first: 1, count: 1 }
        );
    }

    #[test]
    fn long_advance_reports_every_boundary() {
        let mut c = EpochClock::new(Instret::new(10));
        // A 47-instruction segment completes epochs 0..4 at once.
        assert_eq!(
            c.advance(Instret::new(47)),
            EpochEvent::Boundary { first: 0, count: 4 }
        );
        assert_eq!(c.completed(), 4);
        assert_eq!(c.into_epoch(), Instret::new(7));
        // The next epoch index continues where the batch left off.
        assert_eq!(
            c.advance(Instret::new(3)),
            EpochEvent::Boundary { first: 4, count: 1 }
        );
    }

    #[test]
    fn epoch_length_change_preserves_progress() {
        let mut c = EpochClock::new(Instret::new(100));
        c.advance(Instret::new(40));
        c.set_epoch_len(Instret::new(50));
        assert_eq!(c.advance(Instret::new(9)), EpochEvent::Within);
        assert_eq!(
            c.advance(Instret::new(1)),
            EpochEvent::Boundary { first: 0, count: 1 }
        );
    }

    #[test]
    fn shrinking_epoch_below_progress_completes_covered_epochs() {
        let mut c = EpochClock::new(Instret::new(100));
        c.advance(Instret::new(80));
        c.set_epoch_len(Instret::new(10));
        // 81 instructions of progress now cover eight 10-insn epochs;
        // none of them is silently dropped.
        assert_eq!(
            c.advance(Instret::new(1)),
            EpochEvent::Boundary { first: 0, count: 8 }
        );
        assert_eq!(c.into_epoch(), Instret::new(1));
        assert_eq!(c.completed(), 8);
    }

    #[test]
    fn event_boundary_count_helper() {
        assert_eq!(EpochEvent::Within.boundaries(), 0);
        assert_eq!(EpochEvent::Boundary { first: 3, count: 2 }.boundaries(), 2);
    }

    #[test]
    fn restart_epoch_zeroes_progress_only() {
        let mut c = EpochClock::new(Instret::new(10));
        c.advance(Instret::new(10));
        c.advance(Instret::new(7));
        c.restart_epoch();
        assert_eq!(c.into_epoch(), Instret::ZERO);
        assert_eq!(c.completed(), 1);
        assert_eq!(c.total(), Instret::new(17));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_rejected() {
        EpochClock::new(Instret::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!EpochClock::new(Instret::new(5)).to_string().is_empty());
    }
}
