//! Property-based tests for the simulation kernel.

use crate::cycle::{ipc, Cycle, Instret};
use crate::epoch::{EpochClock, EpochEvent};
use crate::rng::Rng64;
use crate::stats::{Histogram, Ratio, RunningStats, WindowedMean};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Epoch boundaries fire exactly `total / len` times under
    /// per-instruction advancement, in strictly increasing order.
    #[test]
    fn epoch_boundaries_are_exact(len in 1u64..100, total in 1u64..2_000) {
        let mut clock = EpochClock::new(Instret::new(len));
        let mut boundaries = Vec::new();
        for _ in 0..total {
            if let EpochEvent::Boundary(i) = clock.advance(Instret::new(1)) {
                boundaries.push(i);
            }
        }
        prop_assert_eq!(boundaries.len() as u64, total / len);
        prop_assert!(boundaries.windows(2).all(|w| w[1] == w[0] + 1));
        prop_assert_eq!(clock.total(), Instret::new(total));
    }

    /// The running-stats merge is associative with sequential recording
    /// for any 3-way split of the data.
    #[test]
    fn welford_merge_matches_sequential(
        data in prop::collection::vec(-1e6f64..1e6, 3..200),
        cut1 in 0usize..100,
        cut2 in 0usize..100,
    ) {
        let a = cut1 % data.len();
        let b = a + (cut2 % (data.len() - a));
        let mut all = RunningStats::new();
        data.iter().for_each(|&x| all.record(x));
        let mut s1 = RunningStats::new();
        let mut s2 = RunningStats::new();
        let mut s3 = RunningStats::new();
        data[..a].iter().for_each(|&x| s1.record(x));
        data[a..b].iter().for_each(|&x| s2.record(x));
        data[b..].iter().for_each(|&x| s3.record(x));
        s1.merge(&s2);
        s1.merge(&s3);
        prop_assert_eq!(s1.count(), all.count());
        prop_assert!((s1.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!(
            (s1.population_variance() - all.population_variance()).abs()
                < 1e-4 * (1.0 + all.population_variance())
        );
    }

    /// Histogram counts are conserved and the percentile function is
    /// monotone in `p`.
    #[test]
    fn histogram_conservation_and_monotonicity(
        values in prop::collection::vec(0u64..1 << 40, 1..300)
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.iter().map(|(_, n)| n).sum::<u64>(), values.len() as u64);
        let mut last = 0u64;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile must be monotone");
            last = v;
        }
    }

    /// A windowed mean over the last k items equals the arithmetic mean
    /// of the suffix.
    #[test]
    fn windowed_mean_matches_suffix(
        data in prop::collection::vec(-1e4f64..1e4, 1..100),
        k in 1usize..16,
    ) {
        let mut w = WindowedMean::new(k);
        data.iter().for_each(|&x| w.record(x));
        let suffix = &data[data.len().saturating_sub(k)..];
        let expect = suffix.iter().sum::<f64>() / suffix.len() as f64;
        prop_assert!((w.mean() - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        prop_assert_eq!(w.len(), suffix.len());
    }

    /// Ratio bulk recording equals item-by-item recording.
    #[test]
    fn ratio_bulk_equals_itemized(outcomes in prop::collection::vec(prop::bool::ANY, 0..200)) {
        let mut a = Ratio::new();
        outcomes.iter().for_each(|&o| a.record(o));
        let hits = outcomes.iter().filter(|&&o| o).count() as u64;
        let mut b = Ratio::new();
        b.record_bulk(hits, outcomes.len() as u64);
        prop_assert_eq!(a.hits(), b.hits());
        prop_assert_eq!(a.total(), b.total());
        prop_assert_eq!(a.rate(), b.rate());
    }

    /// gen_range over any non-empty range stays in bounds; ipc is the
    /// exact ratio.
    #[test]
    fn rng_range_and_ipc(seed in prop::num::u64::ANY, lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..50 {
            let x = rng.gen_range(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&x));
        }
        let v = ipc(Instret::new(span), Cycle::new(span * 2));
        prop_assert!((v - 0.5).abs() < 1e-12);
    }
}
