//! Property-style tests for the simulation kernel.
//!
//! Each test runs a fixed number of deterministic cases whose inputs are
//! generated from a seeded [`Rng64`] — the same randomized-coverage idea
//! as `proptest`, but dependency-free and bit-reproducible.

use crate::cycle::{ipc, Cycle, Instret};
use crate::epoch::{EpochClock, EpochEvent};
use crate::rng::{Rng64, ZipfApprox};
use crate::stats::{Histogram, Ratio, RunningStats, WindowedMean};

const CASES: u64 = 64;

/// The prepared-constant Zipf sampler draws the exact same values as the
/// on-the-fly [`Rng64::sample_zipf_approx`] — including the degenerate
/// `s == 1` branch and the `n == 1` no-draw short-circuit.
#[test]
fn prepared_zipf_matches_on_the_fly_sampler() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x21FF_0000 + case);
        let n = match case % 4 {
            0 => 1,
            1 => g.gen_range(2..10),
            _ => g.gen_range(2..1 << 24),
        };
        let s = match case % 3 {
            0 => 1.0,
            1 => 0.8 + g.next_f64() * 0.5,
            _ => g.next_f64() * 3.0,
        };
        let prepared = ZipfApprox::new(n, s);
        assert_eq!(prepared.n(), n);
        let mut a = Rng64::seed_from(0x5A3F_0000 + case);
        let mut b = a.clone();
        for draw in 0..512 {
            assert_eq!(
                a.sample_zipf_approx(n, s),
                prepared.sample(&mut b),
                "case {case} draw {draw}: n={n} s={s}"
            );
            // Both must have consumed identical randomness.
            assert_eq!(a.next_u64(), b.next_u64(), "case {case} draw {draw}");
        }
    }
}

/// Epoch boundaries fire exactly `total / len` times under
/// per-instruction advancement, in strictly increasing order.
#[test]
fn epoch_boundaries_are_exact() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xE90C_0000 + case);
        let len = g.gen_range(1..100);
        let total = g.gen_range(1..2_000);
        let mut clock = EpochClock::new(Instret::new(len));
        let mut boundaries = Vec::new();
        for _ in 0..total {
            if let EpochEvent::Boundary { first, count } = clock.advance(Instret::new(1)) {
                assert_eq!(
                    count, 1,
                    "single-instruction advance crossed {count} epochs"
                );
                boundaries.push(first);
            }
        }
        assert_eq!(boundaries.len() as u64, total / len);
        assert!(boundaries.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(clock.total(), Instret::new(total));
    }
}

/// Bulk advances report every boundary a segment spans: the sum of all
/// reported counts matches per-instruction advancement, and indices are
/// gapless.
#[test]
fn epoch_bulk_advance_reports_every_boundary() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0xE90C_1000 + case);
        let len = g.gen_range(1..100);
        let mut clock = EpochClock::new(Instret::new(len));
        let mut total = 0u64;
        let mut crossed = 0u64;
        let mut next_index = 0u64;
        for _ in 0..g.gen_range(1..50) {
            let n = g.gen_range(1..500);
            total += n;
            if let EpochEvent::Boundary { first, count } = clock.advance(Instret::new(n)) {
                assert_eq!(first, next_index, "boundary indices must be gapless");
                next_index = first + count;
                crossed += count;
            }
        }
        assert_eq!(crossed, total / len, "len={len} total={total}");
        assert_eq!(clock.completed(), total / len);
        assert_eq!(clock.into_epoch(), Instret::new(total % len));
    }
}

/// The running-stats merge is associative with sequential recording for
/// any 3-way split of the data.
#[test]
fn welford_merge_matches_sequential() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x3E1F_0000 + case);
        let n = g.gen_range(3..200) as usize;
        let data: Vec<f64> = (0..n).map(|_| g.next_f64() * 2e6 - 1e6).collect();
        let a = (g.gen_range(0..100) as usize) % data.len();
        let b = a + (g.gen_range(0..100) as usize) % (data.len() - a);
        let mut all = RunningStats::new();
        data.iter().for_each(|&x| all.record(x));
        let mut s1 = RunningStats::new();
        let mut s2 = RunningStats::new();
        let mut s3 = RunningStats::new();
        data[..a].iter().for_each(|&x| s1.record(x));
        data[a..b].iter().for_each(|&x| s2.record(x));
        data[b..].iter().for_each(|&x| s3.record(x));
        s1.merge(&s2);
        s1.merge(&s3);
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        assert!(
            (s1.population_variance() - all.population_variance()).abs()
                < 1e-4 * (1.0 + all.population_variance())
        );
    }
}

/// Histogram counts are conserved and the percentile function is
/// monotone in `p`.
#[test]
fn histogram_conservation_and_monotonicity() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x8157_0000 + case);
        let n = g.gen_range(1..300) as usize;
        let values: Vec<u64> = (0..n).map(|_| g.gen_range(0..1 << 40)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.iter().map(|(_, n)| n).sum::<u64>(), values.len() as u64);
        let mut last = 0u64;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile must be monotone");
            last = v;
        }
    }
}

/// A windowed mean over the last k items equals the arithmetic mean of
/// the suffix.
#[test]
fn windowed_mean_matches_suffix() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x31D0_0000 + case);
        let n = g.gen_range(1..100) as usize;
        let data: Vec<f64> = (0..n).map(|_| g.next_f64() * 2e4 - 1e4).collect();
        let k = g.gen_range(1..16) as usize;
        let mut w = WindowedMean::new(k);
        data.iter().for_each(|&x| w.record(x));
        let suffix = &data[data.len().saturating_sub(k)..];
        let expect = suffix.iter().sum::<f64>() / suffix.len() as f64;
        assert!((w.mean() - expect).abs() < 1e-9 * (1.0 + expect.abs()));
        assert_eq!(w.len(), suffix.len());
    }
}

/// Ratio bulk recording equals item-by-item recording.
#[test]
fn ratio_bulk_equals_itemized() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x4A71_0000 + case);
        let n = g.gen_range(0..200) as usize;
        let outcomes: Vec<bool> = (0..n).map(|_| g.gen_bool(0.5)).collect();
        let mut a = Ratio::new();
        outcomes.iter().for_each(|&o| a.record(o));
        let hits = outcomes.iter().filter(|&&o| o).count() as u64;
        let mut b = Ratio::new();
        b.record_bulk(hits, outcomes.len() as u64);
        assert_eq!(a.hits(), b.hits());
        assert_eq!(a.total(), b.total());
        assert_eq!(a.rate(), b.rate());
    }
}

/// gen_range over any non-empty range stays in bounds; ipc is the exact
/// ratio.
#[test]
fn rng_range_and_ipc() {
    for case in 0..CASES {
        let mut g = Rng64::seed_from(0x59C4_0000 + case);
        let seed = g.next_u64();
        let lo = g.gen_range(0..1000);
        let span = g.gen_range(1..1000);
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..50 {
            let x = rng.gen_range(lo..lo + span);
            assert!((lo..lo + span).contains(&x));
        }
        let v = ipc(Instret::new(span), Cycle::new(span * 2));
        assert!((v - 0.5).abs() < 1e-12);
    }
}
