//! Simulation kernel for the `osoffload` workspace.
//!
//! This crate provides the small, dependency-free foundations shared by
//! every other crate in the reproduction of *"Improving Server Performance
//! on Multi-Cores via Selective Off-loading of OS Functionality"*
//! (Nellans et al., WIOSCA 2010):
//!
//! * [`Cycle`] and [`Instret`] — strongly-typed simulation time and
//!   retired-instruction counts ([`cycle`] module);
//! * [`Rng64`] — a deterministic, seedable `xoshiro256**` random number
//!   generator with the distribution adaptors the workload models need
//!   ([`rng`] module);
//! * statistics — counters, running moments, log-scale histograms and
//!   windowed means used for every measurement the paper reports
//!   ([`stats`] module);
//! * [`EpochClock`] — the coarse-grained epoch framework that drives the
//!   paper's dynamic threshold estimator (§III-B) ([`epoch`] module).
//!
//! Everything in this crate is deterministic: given the same seed the whole
//! simulation reproduces bit-for-bit, which the integration test-suite
//! relies on.
//!
//! # Examples
//!
//! ```
//! use osoffload_sim::{Cycle, Rng64, RunningStats};
//!
//! let mut rng = Rng64::seed_from(42);
//! let mut stats = RunningStats::new();
//! for _ in 0..1000 {
//!     stats.record(rng.next_f64());
//! }
//! assert!((stats.mean() - 0.5).abs() < 0.05);
//! let t = Cycle::ZERO + 350;
//! assert_eq!(t.as_u64(), 350);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_audit;
pub mod cancel;
pub mod cycle;
pub mod epoch;
pub mod fastmod;
pub mod rng;
pub mod stats;

#[cfg(test)]
mod proptests;

pub use cancel::{CancelToken, Cancelled};
pub use cycle::{Cycle, Instret};
pub use epoch::{EpochClock, EpochEvent};
pub use fastmod::FastMod;
pub use rng::{Rng64, SeedSequence, ZipfApprox};
pub use stats::{Counter, Histogram, Ratio, RunningStats, WindowedMean};
