//! Strongly-typed simulation time ([`Cycle`]) and retired-instruction
//! counts ([`Instret`]).
//!
//! The timing simulator advances many independent clocks (one per hardware
//! thread, one per shared resource). Newtypes keep cycle arithmetic and
//! instruction arithmetic from being mixed up, which the paper's metrics
//! (IPC = instructions / cycles) make an easy mistake.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulated time, measured in core clock
/// cycles at the simulated 3.5 GHz frequency (Table II of the paper).
///
/// `Cycle` is an absolute timestamp when returned by clocks and a duration
/// when produced by subtraction; both views share the representation, as
/// with `std::time::Duration`-style arithmetic on a single monotonic
/// domain.
///
/// # Examples
///
/// ```
/// use osoffload_sim::Cycle;
///
/// let start = Cycle::new(1_000);
/// let end = start + 350; // a DRAM access later
/// assert_eq!(end - start, Cycle::new(350));
/// assert!(end > start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp — the instant simulation begins.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable timestamp, used as "never" / "idle
    /// forever" sentinel by schedulers.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp (or duration) of `n` cycles.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycle(n)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as `f64`, for ratio metrics.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction: returns `self - rhs`, or zero when `rhs`
    /// is later than `self`.
    ///
    /// Used when computing queueing delays where an arrival may precede
    /// resource availability in either order.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (clock under-flow indicates
    /// a causality bug in the simulator).
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(n: u64) -> Cycle {
        Cycle(n)
    }
}

impl From<Cycle> for u64 {
    #[inline]
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

/// A count of retired (dynamic) instructions.
///
/// The paper uses instruction counts both as the unit of OS invocation
/// *run length* (the predictor's output, §III-A) and as the unit of epoch
/// length for the dynamic threshold estimator (§III-B).
///
/// # Examples
///
/// ```
/// use osoffload_sim::Instret;
///
/// let warmup = Instret::new(50_000_000); // paper's 50 M warm-up
/// assert_eq!((warmup + Instret::new(1)).as_u64(), 50_000_001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instret(u64);

impl Instret {
    /// Zero instructions.
    pub const ZERO: Instret = Instret(0);

    /// Creates a count of `n` instructions.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Instret(n)
    }

    /// Returns the raw instruction count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw instruction count as `f64`, for IPC computation.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Instret) -> Instret {
        Instret(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Instret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} insn", self.0)
    }
}

impl Add for Instret {
    type Output = Instret;
    #[inline]
    fn add(self, rhs: Instret) -> Instret {
        Instret(self.0 + rhs.0)
    }
}

impl Add<u64> for Instret {
    type Output = Instret;
    #[inline]
    fn add(self, rhs: u64) -> Instret {
        Instret(self.0 + rhs)
    }
}

impl AddAssign for Instret {
    #[inline]
    fn add_assign(&mut self, rhs: Instret) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Instret {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Instret {
    type Output = Instret;
    #[inline]
    fn sub(self, rhs: Instret) -> Instret {
        Instret(self.0 - rhs.0)
    }
}

impl Sum for Instret {
    fn sum<I: Iterator<Item = Instret>>(iter: I) -> Instret {
        iter.fold(Instret::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Instret {
    #[inline]
    fn from(n: u64) -> Instret {
        Instret(n)
    }
}

impl From<Instret> for u64 {
    #[inline]
    fn from(i: Instret) -> u64 {
        i.0
    }
}

/// Instructions-per-cycle over a measured interval.
///
/// Returns `0.0` for an empty interval rather than dividing by zero, so
/// metrics code does not have to special-case unstarted cores.
///
/// # Examples
///
/// ```
/// use osoffload_sim::cycle::ipc;
/// use osoffload_sim::{Cycle, Instret};
///
/// assert_eq!(ipc(Instret::new(500), Cycle::new(1000)), 0.5);
/// assert_eq!(ipc(Instret::new(500), Cycle::ZERO), 0.0);
/// ```
#[inline]
pub fn ipc(instructions: Instret, cycles: Cycle) -> f64 {
    if cycles == Cycle::ZERO {
        0.0
    } else {
        instructions.as_f64() / cycles.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_round_trips() {
        let a = Cycle::new(100);
        let b = a + 250;
        assert_eq!(b, Cycle::new(350));
        assert_eq!(b - a, Cycle::new(250));
        let mut c = a;
        c += 10;
        c += Cycle::new(5);
        assert_eq!(c.as_u64(), 115);
    }

    #[test]
    fn cycle_saturating_sub_clamps_to_zero() {
        assert_eq!(Cycle::new(5).saturating_sub(Cycle::new(9)), Cycle::ZERO);
        assert_eq!(Cycle::new(9).saturating_sub(Cycle::new(5)), Cycle::new(4));
    }

    #[test]
    fn cycle_min_max() {
        let (a, b) = (Cycle::new(3), Cycle::new(7));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn cycle_ordering_and_sentinels() {
        assert!(Cycle::ZERO < Cycle::MAX);
        assert!(Cycle::new(1) > Cycle::ZERO);
    }

    #[test]
    fn cycle_sum_over_iterator() {
        let total: Cycle = (1..=4u64).map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(10));
    }

    #[test]
    fn instret_arithmetic() {
        let mut n = Instret::new(10);
        n += 5;
        n += Instret::new(1);
        assert_eq!(n.as_u64(), 16);
        assert_eq!(n - Instret::new(6), Instret::new(10));
        assert_eq!(
            Instret::new(3).saturating_sub(Instret::new(9)),
            Instret::ZERO
        );
    }

    #[test]
    fn instret_sum_over_iterator() {
        let total: Instret = vec![Instret::new(1), Instret::new(2)].into_iter().sum();
        assert_eq!(total, Instret::new(3));
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(ipc(Instret::new(100), Cycle::ZERO), 0.0);
        assert!((ipc(Instret::new(100), Cycle::new(400)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conversions_from_u64() {
        assert_eq!(Cycle::from(9u64).as_u64(), 9);
        assert_eq!(u64::from(Cycle::new(9)), 9);
        assert_eq!(Instret::from(9u64).as_u64(), 9);
        assert_eq!(u64::from(Instret::new(9)), 9);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "3 cyc");
        assert_eq!(Instret::new(3).to_string(), "3 insn");
    }
}
