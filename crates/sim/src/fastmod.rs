//! Exact strength-reduced modulo by a fixed divisor.
//!
//! The address-locality samplers reduce a scrambled line index modulo the
//! region's line count on every memory reference; a hardware `div` there
//! is one of the hottest single instructions in the whole simulator.
//! [`FastMod`] replaces it with the direct-remainder scheme of Lemire,
//! Kaser & Kurz (*Faster Remainder by Direct Computation*, 2019): with
//! `c = ceil(2^128 / d)` precomputed once, `n mod d` is the high 64 bits
//! of `(c · n mod 2^128) · d >> 64` — three multiplies, no division.
//! With a 128-bit fraction the result is **exact** for every `u64`
//! dividend and divisor, so substituting it for `%` preserves
//! bit-identical simulation output (the tests sweep edge divisors to
//! enforce this).

/// Precomputed `mod d` for a fixed divisor `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastMod {
    d: u64,
    /// `ceil(2^128 / d) mod 2^128` (wraps to 0 for `d == 1`).
    c: u128,
}

impl FastMod {
    /// `mod 1` — always 0. Handy as a placeholder in caches.
    pub const ONE: FastMod = FastMod { d: 1, c: 0 };

    /// Prepares the reciprocal fraction for divisor `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "FastMod: divisor must be positive");
        // floor((2^128 - 1) / d) + 1 == ceil(2^128 / d) for every d > 0;
        // for d == 1 it wraps to 0, and the multiply-high below then
        // yields 0 — which is n mod 1.
        FastMod {
            d,
            c: (u128::MAX / d as u128).wrapping_add(1),
        }
    }

    /// The divisor this was prepared for.
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// Returns `n % self.divisor()`, exactly.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        let low = self.c.wrapping_mul(n as u128);
        // Multiply-high of a 128-bit value by a 64-bit value via two
        // 64x64 partial products; the sum cannot overflow u128.
        let hi = (low >> 64) as u64 as u128;
        let lo = low as u64 as u128;
        let d = self.d as u128;
        ((hi * d + ((lo * d) >> 64)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn matches_hardware_remainder_on_edge_divisors() {
        let divisors = [
            1u64,
            2,
            3,
            5,
            7,
            63,
            64,
            65,
            10_240,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ];
        let dividends = [0u64, 1, 2, 63, 64, 1 << 32, u64::MAX - 1, u64::MAX];
        for &d in &divisors {
            let fm = FastMod::new(d);
            for &n in &dividends {
                assert_eq!(fm.rem(n), n % d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn matches_hardware_remainder_on_random_pairs() {
        let mut rng = Rng64::seed_from(0x00FA_570D);
        for _ in 0..200_000 {
            let d = rng.next_u64().max(1);
            let n = rng.next_u64();
            let fm = FastMod::new(d);
            assert_eq!(fm.rem(n), n % d, "n={n} d={d}");
        }
        // Small divisors like the samplers actually use.
        for _ in 0..200_000 {
            let d = (rng.next_u64() % (1 << 26)).max(1);
            let n = rng.next_u64();
            let fm = FastMod::new(d);
            assert_eq!(fm.rem(n), n % d, "n={n} d={d}");
        }
    }
}
