//! Deterministic random number generation.
//!
//! Every stochastic decision in the simulator — workload address streams,
//! syscall run-length noise, interrupt arrivals — flows from a single
//! `u64` seed through [`Rng64`], a `xoshiro256**` generator seeded via
//! SplitMix64. We implement these two tiny, public-domain algorithms
//! directly so the per-instruction hot path stays inlined and the
//! simulator carries no external RNG dependency.
//!
//! Independent simulation components derive *streams* from the master seed
//! with [`Rng64::split`], so adding a consumer never perturbs the draws
//! seen by existing consumers (a property the regression tests rely on).

use core::fmt;

/// SplitMix64 step: the standard seeding/stream-derivation mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic `xoshiro256**` pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use osoffload_sim::Rng64;
///
/// let mut a = Rng64::seed_from(7);
/// let mut b = Rng64::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully reproducible
///
/// let mut child = a.split(); // independent stream
/// let x = child.gen_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl fmt::Debug for Rng64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The internal state is not useful to display; show a fingerprint.
        write!(
            f,
            "Rng64 {{ state: {:#018x} }}",
            self.s[0] ^ self.s[1] ^ self.s[2] ^ self.s[3]
        )
    }
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) produces a well-mixed state because seeding
    /// goes through SplitMix64, per the xoshiro authors' recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derives an independent child stream.
    ///
    /// The child is seeded from the parent's next output, so distinct
    /// `split` calls yield distinct streams, and the parent remains usable.
    pub fn split(&mut self) -> Rng64 {
        Rng64::seed_from(self.next_u64())
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly spaced mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping (Lemire). Bias is < 2^-64
        // per draw, far below simulation noise.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Samples an exponential distribution with the given `mean`.
    ///
    /// Used for device-interrupt inter-arrival times (§III-A notes that
    /// interrupts extend OS invocations unpredictably).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    #[inline]
    pub fn sample_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "sample_exp: mean must be positive"
        );
        // Inverse-CDF; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Samples a geometric-like discrete value: the number of trials until
    /// the first success with probability `p`, at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    #[inline]
    pub fn sample_geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "sample_geometric: p must be in (0,1]");
        if p >= 1.0 {
            return 1;
        }
        let u = 1.0 - self.next_f64();
        1 + (u.ln() / (1.0 - p).ln()) as u64
    }

    /// Samples a bounded Pareto-like heavy-tailed value in `[min, max]`
    /// with shape `alpha`.
    ///
    /// Server syscall run-length distributions are heavy-tailed: most
    /// invocations are short, a few (I/O, page-cache misses) run for tens
    /// of thousands of instructions. Bounded Pareto captures this with two
    /// intuitive parameters.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`, `min == 0`, or `alpha <= 0`.
    pub fn sample_bounded_pareto(&mut self, min: f64, max: f64, alpha: f64) -> f64 {
        assert!(
            min > 0.0 && min < max,
            "sample_bounded_pareto: need 0 < min < max"
        );
        assert!(alpha > 0.0, "sample_bounded_pareto: alpha must be positive");
        let u = self.next_f64();
        let la = min.powf(alpha);
        let ha = max.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        x.clamp(min, max)
    }

    /// Samples an approximately normal value via the sum of three uniforms
    /// (Irwin–Hall), rescaled to the requested `mean` and `std_dev`.
    ///
    /// Full Box–Muller precision is unnecessary for workload noise; the
    /// Irwin–Hall approximation avoids `ln`/`sqrt` on the hot path.
    #[inline]
    pub fn sample_normal_approx(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Sum of 3 uniforms has mean 1.5, variance 3/12 = 0.25 => sd 0.5.
        let s = self.next_f64() + self.next_f64() + self.next_f64();
        mean + (s - 1.5) * 2.0 * std_dev
    }

    /// Samples an index from a cumulative weight table.
    ///
    /// `cumulative` must be non-empty, non-decreasing, and end with the
    /// total weight. Returns an index in `0..cumulative.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `cumulative` is empty or its last element is zero.
    #[inline]
    pub fn sample_cumulative(&mut self, cumulative: &[f64]) -> usize {
        let total = *cumulative
            .last()
            .expect("sample_cumulative: empty weight table");
        assert!(total > 0.0, "sample_cumulative: zero total weight");
        let x = self.next_f64() * total;
        match cumulative.binary_search_by(|w| w.partial_cmp(&x).expect("NaN weight")) {
            Ok(i) | Err(i) => i.min(cumulative.len() - 1),
        }
    }

    /// Samples from a Zipf-like distribution over `0..n` with skew `s`,
    /// using an inverse-power transform (approximate but fast).
    ///
    /// Used for hot/cold address selection inside working sets: low indices
    /// are exponentially more popular, which is what gives caches their
    /// observed hit rates.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn sample_zipf_approx(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "sample_zipf_approx: n must be positive");
        if n == 1 {
            return 0;
        }
        let u = self.next_f64();
        // Inverse of CDF x^(1-s) for s != 1 over [1, n]; clamp into range.
        let exp = 1.0 - s;
        let x = if exp.abs() < 1e-9 {
            ((n as f64).ln() * u).exp()
        } else {
            ((n as f64).powf(exp) * u + (1.0 - u)).powf(1.0 / exp)
        };
        (x as u64).min(n - 1)
    }
}

/// A deterministic seed derivation sequence: the RNG-splitting scheme
/// shared by the experiment runner and the fuzzer.
///
/// Position `i` of the sequence depends only on the master seed and `i`
/// — never on how the seeds are consumed — so any plan, sweep, or fuzz
/// campaign built on a `SeedSequence` derives bit-identical per-point
/// seeds regardless of worker count or evaluation order. The derivation
/// is `Rng64::seed_from(master).split().next_u64()` per position, which
/// is exactly what
/// [`ExperimentPlan::push`](../../osoffload_runner/struct.ExperimentPlan.html)
/// has always done; extracting it here keeps the two consumers in
/// lockstep.
///
/// # Examples
///
/// ```
/// use osoffload_sim::SeedSequence;
///
/// let a: Vec<u64> = SeedSequence::new(42).take(4).collect();
/// let b: Vec<u64> = SeedSequence::new(42).take(4).collect();
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    rng: Rng64,
}

impl SeedSequence {
    /// Starts the sequence derived from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        SeedSequence {
            rng: Rng64::seed_from(master_seed),
        }
    }

    /// Derives the next seed in the sequence.
    pub fn next_seed(&mut self) -> u64 {
        self.rng.split().next_u64()
    }
}

impl Iterator for SeedSequence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_seed())
    }
}

/// Precomputed constants for [`Rng64::sample_zipf_approx`] with a fixed
/// `(n, s)` pair.
///
/// The sampler's inverse-CDF costs two `powf` calls per draw; for fixed
/// `(n, s)` one of them — `(n as f64).powf(1.0 - s)` — and the
/// reciprocal exponent are constants. Hot paths drawing millions of
/// values from the same distribution prepare them once and call
/// [`ZipfApprox::sample`], which consumes the same random draw and
/// evaluates the same float expressions as `sample_zipf_approx`, so the
/// results are bit-identical (a property test enforces this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfApprox {
    n: u64,
    /// `(n as f64).powf(1.0 - s)`; unused on the degenerate branch.
    pow_n_exp: f64,
    /// `1.0 / (1.0 - s)`; unused on the degenerate branch.
    inv_exp: f64,
    /// `(n as f64).ln()`, for the `s ≈ 1` degenerate branch.
    ln_n: f64,
    /// Whether `|1 - s| < 1e-9` (the degenerate inverse-CDF form).
    degenerate: bool,
}

impl ZipfApprox {
    /// Prepares the constants for `sample_zipf_approx(n, s)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "ZipfApprox: n must be positive");
        let exp = 1.0 - s;
        ZipfApprox {
            n,
            pow_n_exp: (n as f64).powf(exp),
            inv_exp: 1.0 / exp,
            ln_n: (n as f64).ln(),
            degenerate: exp.abs() < 1e-9,
        }
    }

    /// The table size this sampler was prepared for.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one value, bit-identical to `rng.sample_zipf_approx(n, s)`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.next_f64();
        let x = if self.degenerate {
            (self.ln_n * u).exp()
        } else {
            (self.pow_n_exp * u + (1.0 - u)).powf(self.inv_exp)
        };
        (x as u64).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from(123);
        let mut b = Rng64::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_later_parent_use() {
        let mut parent1 = Rng64::seed_from(9);
        let mut child1 = parent1.split();
        let child1_draws: Vec<u64> = (0..8).map(|_| child1.next_u64()).collect();

        let mut parent2 = Rng64::seed_from(9);
        let mut child2 = parent2.split();
        // Using the parent afterwards must not affect the child's stream.
        for _ in 0..5 {
            parent2.next_u64();
        }
        let child2_draws: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_eq!(child1_draws, child2_draws);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng64::seed_from(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng64::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(100..108);
            assert!((100..108).contains(&x));
        }
        // All values of a small range should appear.
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[(rng.gen_range(0..8)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        Rng64::seed_from(0).gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng64::seed_from(0);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(1.5));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = Rng64::seed_from(77);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng64::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.sample_exp(500.0)).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean = {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut rng = Rng64::seed_from(3);
        for _ in 0..1_000 {
            assert!(rng.sample_geometric(0.5) >= 1);
        }
        assert_eq!(rng.sample_geometric(1.0), 1);
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let mut rng = Rng64::seed_from(8);
        let mut below_1k = 0u32;
        for _ in 0..10_000 {
            let x = rng.sample_bounded_pareto(50.0, 50_000.0, 1.1);
            assert!((50.0..=50_000.0).contains(&x));
            if x < 1_000.0 {
                below_1k += 1;
            }
        }
        // Heavy skew towards the minimum.
        assert!(below_1k > 8_000, "below_1k = {below_1k}");
    }

    #[test]
    fn normal_approx_moments() {
        let mut rng = Rng64::seed_from(21);
        let n = 50_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| rng.sample_normal_approx(10.0, 2.0))
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "sd = {}", var.sqrt());
    }

    #[test]
    fn cumulative_sampling_matches_weights() {
        let mut rng = Rng64::seed_from(15);
        let cum = [1.0, 3.0, 4.0]; // weights 1, 2, 1
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.sample_cumulative(&cum)] += 1;
        }
        let f1 = counts[1] as f64 / 40_000.0;
        assert!((f1 - 0.5).abs() < 0.02, "f1 = {f1}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let mut rng = Rng64::seed_from(4);
        let n = 1_000u64;
        let mut low = 0u32;
        for _ in 0..10_000 {
            let x = rng.sample_zipf_approx(n, 1.2);
            assert!(x < n);
            if x < 100 {
                low += 1;
            }
        }
        // Top 10% of indices should draw well over half the mass.
        assert!(low > 5_000, "low = {low}");
    }

    #[test]
    fn zipf_n_one_is_always_zero() {
        let mut rng = Rng64::seed_from(4);
        for _ in 0..10 {
            assert_eq!(rng.sample_zipf_approx(1, 1.0), 0);
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let rng = Rng64::seed_from(0);
        assert!(!format!("{rng:?}").is_empty());
    }

    #[test]
    fn seed_sequence_matches_the_historical_derivation() {
        // The extracted helper must keep deriving exactly what the
        // runner's plans always did: split-then-draw per position.
        let mut seq = SeedSequence::new(0xFEED);
        let mut legacy = Rng64::seed_from(0xFEED);
        for _ in 0..16 {
            assert_eq!(seq.next_seed(), legacy.split().next_u64());
        }
    }

    #[test]
    fn seed_sequence_positions_are_distinct() {
        let seeds: std::collections::HashSet<u64> = SeedSequence::new(7).take(64).collect();
        assert_eq!(seeds.len(), 64);
    }
}
