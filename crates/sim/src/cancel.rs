//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, clonable flag a watchdog thread can
//! raise while a simulation runs. The simulator polls it at epoch
//! boundaries (one relaxed atomic load per accounting segment — nothing
//! when no token is installed) and unwinds with a [`Cancelled`] panic
//! payload, which the experiment runner catches and records as a
//! timed-out point instead of a failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cloning produces another handle to the same flag; once any handle
/// calls [`cancel`](Self::cancel), every holder observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The panic payload a cancelled simulation unwinds with.
///
/// Carried through [`std::panic::panic_any`] so that a
/// `catch_unwind`-ing caller can downcast it and distinguish a
/// watchdog-initiated cancellation from a genuine failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn cancelled_payload_downcasts() {
        let err = std::panic::catch_unwind(|| std::panic::panic_any(Cancelled)).unwrap_err();
        assert!(err.downcast_ref::<Cancelled>().is_some());
    }
}
