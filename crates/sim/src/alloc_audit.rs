//! Allocation audit hooks for the measured simulation region.
//!
//! The hot path of the simulator — everything executed between
//! [`region_enter`] and [`region_exit`] — is required to be
//! allocation-free: every buffer is sized at construction time, and the
//! inner instruction loop must never touch the global allocator. This
//! module provides the *hook* half of the audit: cheap thread-local
//! bookkeeping that a test harness's `#[global_allocator]` shim can call
//! from its `alloc`/`realloc` paths via [`note_alloc`].
//!
//! The shim itself lives in an integration test (it needs `unsafe` and a
//! process-wide allocator, neither of which belongs in this
//! `#![forbid(unsafe_code)]` crate). In production builds nothing calls
//! [`note_alloc`], so the region markers cost two thread-local stores per
//! simulation run.
//!
//! # Examples
//!
//! ```
//! use osoffload_sim::alloc_audit;
//!
//! alloc_audit::region_enter();
//! // ... measured hot path; an instrumented allocator calls
//! // `alloc_audit::note_alloc()` on every allocation ...
//! alloc_audit::region_exit();
//! assert_eq!(alloc_audit::take_region_allocs(), 0);
//! ```

use std::cell::Cell;

thread_local! {
    /// Whether this thread is currently inside the measured region.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
    /// Allocations observed while inside the measured region.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Marks the start of the measured (allocation-free) region on this
/// thread.
pub fn region_enter() {
    IN_REGION.with(|f| f.set(true));
}

/// Marks the end of the measured region on this thread.
pub fn region_exit() {
    IN_REGION.with(|f| f.set(false));
}

/// Returns whether this thread is currently inside the measured region.
pub fn in_region() -> bool {
    IN_REGION.with(|f| f.get())
}

/// Records one allocation if the thread is inside the measured region.
///
/// Call this from an instrumented `#[global_allocator]`'s `alloc` and
/// `realloc` implementations. It is safe to call from allocator context:
/// it performs no allocation itself.
pub fn note_alloc() {
    IN_REGION.with(|f| {
        if f.get() {
            ALLOCS.with(|c| c.set(c.get() + 1));
        }
    });
}

/// Returns the number of in-region allocations recorded on this thread
/// and resets the counter to zero.
pub fn take_region_allocs() -> u64 {
    ALLOCS.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_count_only_inside_region() {
        assert_eq!(take_region_allocs(), 0);
        note_alloc();
        assert_eq!(take_region_allocs(), 0);
        region_enter();
        assert!(in_region());
        note_alloc();
        note_alloc();
        region_exit();
        assert!(!in_region());
        note_alloc();
        assert_eq!(take_region_allocs(), 2);
        assert_eq!(take_region_allocs(), 0);
    }
}
