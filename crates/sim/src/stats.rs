//! Measurement toolkit: counters, running moments, log-scale histograms,
//! hit ratios, and windowed means.
//!
//! Every number the paper reports — IPC, L2 hit rates, binary prediction
//! accuracy, queueing delays, OS-core utilisation — is accumulated through
//! the types in this module, so the experiment drivers never hand-roll
//! statistics.

use core::fmt;

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use osoffload_sim::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero, returning the old value.
    #[inline]
    pub fn take(&mut self) -> u64 {
        core::mem::replace(&mut self.0, 0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Numerically stable single-pass mean / variance / extrema accumulator
/// (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use osoffload_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (0 when empty).
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the observations (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (+∞ when empty — callers should check
    /// [`count`](Self::count) first for empty accumulators).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
                self.count,
                self.mean(),
                self.population_std_dev(),
                self.min,
                self.max
            )
        }
    }
}

/// Hit/miss ratio gauge (cache hit rates, prediction accuracies).
///
/// # Examples
///
/// ```
/// use osoffload_sim::Ratio;
///
/// let mut hits = Ratio::new();
/// hits.record(true);
/// hits.record(true);
/// hits.record(false);
/// assert!((hits.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty gauge.
    pub const fn new() -> Self {
        Ratio { hits: 0, total: 0 }
    }

    /// Records one outcome.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Records `hits` successes out of `total` trials in bulk.
    ///
    /// # Panics
    ///
    /// Panics if `hits > total` — accepting such a record would silently
    /// corrupt [`rate`](Self::rate) (and underflow
    /// [`misses`](Self::misses)), so the invariant is enforced in release
    /// builds too.
    #[inline]
    pub fn record_bulk(&mut self, hits: u64, total: u64) {
        assert!(
            hits <= total,
            "Ratio::record_bulk: hits ({hits}) exceed total ({total})"
        );
        self.hits += hits;
        self.total += total;
    }

    /// Successes so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Failures so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// Trials so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Success rate in `[0, 1]`; 0 when no trials have been recorded.
    #[inline]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another gauge into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// Resets to empty, returning the previous value.
    pub fn take(&mut self) -> Ratio {
        core::mem::take(self)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.hits,
            self.total,
            self.rate() * 100.0
        )
    }
}

/// A log-linear histogram for long-tailed quantities such as OS run
/// lengths and queueing delays (the HDR-histogram layout).
///
/// Values below 64 get one bucket each (exact). Above that, every
/// power-of-two octave is split into 32 linear sub-buckets, so any
/// reported quantile is within 1/32 (≈3.1%) of the true sample —
/// a large improvement over a pure base-2 histogram, whose buckets are
/// up to 2× wide.
///
/// # Examples
///
/// ```
/// use osoffload_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for x in [1, 2, 3, 100, 5_000] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.quantile(50.0), 3);     // exact below 64
/// assert_eq!(h.quantile(100.0), 5_000); // p0/p100 are exact min/max
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; Self::BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Linear sub-buckets per octave (as a power of two).
    const SUB_BITS: u32 = 5;
    /// Linear sub-buckets per octave.
    const SUBS: usize = 1 << Self::SUB_BITS;
    /// Total bucket count: two exact low octaves (values `0..64`) plus
    /// 59 subdivided octaves covering the rest of the `u64` range.
    const BUCKETS: usize = Self::SUBS + (64 - Self::SUB_BITS as usize) * Self::SUBS;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; Self::BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `value`.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < Self::SUBS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let shift = msb - Self::SUB_BITS as usize;
        let sub = ((value >> shift) as usize) - Self::SUBS;
        shift * Self::SUBS + sub + Self::SUBS
    }

    /// Smallest value that maps into bucket `i`.
    #[inline]
    fn bucket_lower(i: usize) -> u64 {
        if i < 2 * Self::SUBS {
            return i as u64;
        }
        let shift = (i - Self::SUBS) / Self::SUBS;
        let sub = (i - Self::SUBS) % Self::SUBS;
        ((Self::SUBS + sub) as u64) << shift
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation; 0 when empty.
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact nearest-rank quantile (`p` in `[0, 100]`): the value of the
    /// `⌈p/100·n⌉`-th smallest observation, resolved to its bucket's
    /// lower bound. Exact for values below 64 and for `p = 0`/`p = 100`
    /// (which return the true min/max); within 3.1% otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Alias for [`quantile`](Self::quantile), kept for the original API
    /// name.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p)
    }

    /// Iterates over non-empty buckets as `(lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_lower(i), n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("nonempty_buckets", &self.iter().count())
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={}",
            self.count,
            self.mean(),
            self.quantile(50.0),
            self.quantile(99.0)
        )
    }
}

/// Mean of the most recent `k` observations.
///
/// The paper's global run-length fallback is exactly a `WindowedMean` of
/// the last **three** completed OS invocations (§III-A).
///
/// # Examples
///
/// ```
/// use osoffload_sim::WindowedMean;
///
/// let mut w = WindowedMean::new(3);
/// w.record(10.0);
/// w.record(20.0);
/// w.record(30.0);
/// w.record(40.0); // evicts 10.0
/// assert!((w.mean() - 30.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedMean {
    window: Vec<f64>,
    next: usize,
    filled: usize,
    sum: f64,
}

impl WindowedMean {
    /// Creates a window of capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "WindowedMean: window must be non-empty");
        WindowedMean {
            window: vec![0.0; k],
            next: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Records an observation, evicting the oldest when full.
    #[inline]
    pub fn record(&mut self, x: f64) {
        if self.filled == self.window.len() {
            self.sum -= self.window[self.next];
        } else {
            self.filled += 1;
        }
        self.window[self.next] = x;
        self.sum += x;
        self.next = (self.next + 1) % self.window.len();
    }

    /// Mean of the observations currently in the window; 0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            self.sum / self.filled as f64
        }
    }

    /// Number of observations currently in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Returns `true` when no observations have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// The window capacity `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.window.len()
    }
}

impl fmt::Display for WindowedMean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mean={:.3} over last {}", self.mean(), self.filled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        c.add(100);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn running_stats_empty_is_sane() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn running_stats_single_observation() {
        let mut s = RunningStats::new();
        s.record(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.record(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        a.record(1.0);
        let b = RunningStats::new();
        let snapshot = a.clone();
        a.merge(&b);
        assert_eq!(a, snapshot);
        let mut c = RunningStats::new();
        c.merge(&snapshot);
        assert_eq!(c, snapshot);
    }

    #[test]
    fn ratio_rates() {
        let mut r = Ratio::new();
        assert_eq!(r.rate(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        r.record(true);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.misses(), 1);
        assert!((r.rate() - 0.75).abs() < 1e-12);
        r.record_bulk(0, 4);
        assert!((r.rate() - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hits (5) exceed total (3)")]
    fn ratio_bulk_rejects_hits_above_total() {
        Ratio::new().record_bulk(5, 3);
    }

    #[test]
    fn ratio_bulk_accepts_boundary() {
        let mut r = Ratio::new();
        r.record_bulk(3, 3);
        r.record_bulk(0, 0);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 3);
        assert_eq!(r.rate(), 1.0);
    }

    #[test]
    fn ratio_merge_and_take() {
        let mut a = Ratio::new();
        a.record(true);
        let mut b = Ratio::new();
        b.record(false);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.hits(), 2);
        let old = a.take();
        assert_eq!(old.total(), 3);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // Values below 64 each get their own exact bucket.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        // The common queueing case: most delays are zero with a few
        // stragglers. A pure base-2 histogram reported p95 = 2 here.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0);
        }
        h.record(40);
        assert_eq!(h.quantile(50.0), 0);
        assert_eq!(h.quantile(95.0), 0);
        assert_eq!(h.quantile(99.0), 0);
        assert_eq!(h.quantile(100.0), 40);
    }

    #[test]
    fn histogram_quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 + 11);
        }
        for p in [10.0, 50.0, 90.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * 10_000f64).ceil() as u64;
            let exact = (rank - 1) * 37 + 11;
            let got = h.quantile(p);
            assert!(got <= exact, "quantile reports the bucket lower bound");
            let err = (exact - got) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0, "p{p}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Histogram::new();
        for i in 0..1_000u64 {
            h.record(i);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p100 = h.percentile(100.0);
        assert!(p50 <= p90 && p90 <= p100);
        assert!((480..=500).contains(&p50), "p50 = {p50}");
        assert_eq!(p100, 999);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_bucket_index_round_trips() {
        for v in (0..2_000u64).chain([63, 64, 65, 4_095, 4_096, 1 << 40, u64::MAX]) {
            let i = Histogram::bucket_index(v);
            let lower = Histogram::bucket_lower(i);
            assert!(lower <= v, "lower({i}) = {lower} > {v}");
            if i + 1 < Histogram::BUCKETS {
                assert!(Histogram::bucket_lower(i + 1) > v, "v={v} above bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_mean_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-12);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 30);
    }

    #[test]
    fn histogram_empty_percentile_is_zero() {
        assert_eq!(Histogram::new().percentile(99.0), 0);
        assert_eq!(Histogram::new().min(), 0);
        assert_eq!(Histogram::new().max(), 0);
    }

    /// What the histogram approximates: the `⌈p/100·n⌉`-th smallest
    /// observation of the sorted sample.
    fn reference_quantile(sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (((p / 100.0) * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64)
            as usize;
        sorted[rank - 1]
    }

    #[test]
    fn histogram_quantiles_match_a_sorted_vector_reference() {
        use crate::rng::Rng64;
        let ps = [
            0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0,
        ];
        let mut rng = Rng64::seed_from(0x9151);
        for trial in 0..50 {
            let n = 1 + (rng.next_u64() % 400) as usize;
            let mut h = Histogram::new();
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix exact-range values (< 64), mid-range, and huge
                // outliers so every bucket regime is exercised.
                let v = match rng.next_u64() % 4 {
                    0 => rng.next_u64() % 64,
                    1 => rng.next_u64() % 10_000,
                    2 => rng.next_u64() % 1_000_000,
                    _ => u64::MAX - rng.next_u64() % 1_000,
                };
                h.record(v);
                values.push(v);
            }
            values.sort_unstable();
            for p in ps {
                let exact = reference_quantile(&values, p);
                let got = h.quantile(p);
                // p = 0 / p = 100 (rank 1 / rank n) are exact min/max.
                if p == 0.0 || p == 100.0 {
                    assert_eq!(got, exact, "trial {trial}: p{p} of {n} values");
                    continue;
                }
                assert!(
                    got <= exact,
                    "trial {trial}: p{p} = {got} above reference {exact}"
                );
                assert!(
                    (h.min()..=h.max()).contains(&got),
                    "trial {trial}: p{p} = {got} outside observed range"
                );
                if exact < 64 {
                    assert_eq!(got, exact, "trial {trial}: small values are exact");
                } else {
                    // One sub-bucket of slack: lower bound within 1/32.
                    let err = (exact - got) as f64 / exact as f64;
                    assert!(
                        err <= 1.0 / 32.0,
                        "trial {trial}: p{p} = {got}, reference {exact}, err {err}"
                    );
                }
            }
        }
        // The empty histogram answers 0 at every p.
        for p in ps {
            assert_eq!(Histogram::new().quantile(p), 0);
        }
    }

    #[test]
    fn windowed_mean_partial_fill() {
        let mut w = WindowedMean::new(4);
        assert!(w.is_empty());
        w.record(8.0);
        assert_eq!(w.mean(), 8.0);
        w.record(4.0);
        assert_eq!(w.mean(), 6.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.capacity(), 4);
    }

    #[test]
    fn windowed_mean_eviction_order() {
        let mut w = WindowedMean::new(2);
        w.record(1.0);
        w.record(2.0);
        w.record(3.0); // evicts 1.0
        assert!((w.mean() - 2.5).abs() < 1e-12);
        w.record(4.0); // evicts 2.0
        assert!((w.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn windowed_mean_zero_capacity_panics() {
        WindowedMean::new(0);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!Counter::new().to_string().is_empty());
        assert!(!RunningStats::new().to_string().is_empty());
        assert!(!Ratio::new().to_string().is_empty());
        assert!(!Histogram::new().to_string().is_empty());
        assert!(!WindowedMean::new(1).to_string().is_empty());
    }
}
