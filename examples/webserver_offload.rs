//! Compare the paper's three decision mechanisms — static
//! instrumentation (SI), dynamic software instrumentation (DI), and the
//! hardware predictor (HI) — on the Apache workload at both migration
//! design points. A miniature of the paper's Figure 5 for one workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example webserver_offload
//! ```

use osoffload::system::{PolicyKind, SimReport, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn run(policy: PolicyKind, latency: u64) -> SimReport {
    Simulation::new(
        SystemConfig::builder()
            .profile(Profile::apache())
            .policy(policy)
            .migration_latency(latency)
            .instructions(1_500_000)
            .warmup(1_000_000)
            .seed(7)
            .build(),
    )
    .run()
}

fn main() {
    println!("Apache: SI vs DI vs HI (normalized to no off-loading)\n");
    let baseline = run(PolicyKind::Baseline, 0);
    println!("baseline throughput: {:.4} insn/cyc\n", baseline.throughput);

    for (label, latency) in [
        ("conservative (5,000 cyc)", 5_000u64),
        ("aggressive (100 cyc)", 100),
    ] {
        println!("--- {label} ---");
        let policies = [
            ("SI", PolicyKind::StaticInstrumentation { stub_cost: 25 }),
            // N = 100: where the dynamic estimator settles for Apache
            // (see the threshold_tuning example).
            (
                "DI",
                PolicyKind::DynamicInstrumentation {
                    threshold: 100,
                    cost: 120,
                },
            ),
            ("HI", PolicyKind::HardwarePredictor { threshold: 100 }),
        ];
        for (name, policy) in policies {
            let r = run(policy, latency);
            println!(
                "{name}: {:.3}x  (offloaded {} invocations, decision overhead {} cycles)",
                r.normalized_to(&baseline),
                r.offloads,
                r.decision_overhead_cycles
            );
        }
        println!();
    }
    println!("Expected ordering (paper, Figure 5): HI >= SI, HI > DI; DI pays its");
    println!("per-entry instrumentation on every one of the thousands of OS entries.");
}
