//! Watch the paper's §III-B dynamic threshold estimator converge.
//!
//! The estimator samples candidate thresholds in 25 M-instruction epochs
//! (scaled down here), adopts a neighbour when its mean L2 hit rate is
//! ≥1% better, and doubles its stable run length while the choice keeps
//! winning. This example prints the epoch-by-epoch decision log and then
//! compares the tuned result against every static threshold.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use osoffload::core::TunerConfig;
use osoffload::system::{PolicyKind, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn main() {
    let profile = Profile::apache();
    let instructions = 2_000_000;

    // Scale the paper's 25 M-instruction epochs down in proportion.
    let tuner = TunerConfig::scaled_down(500);
    let cfg = SystemConfig::builder()
        .profile(profile.clone())
        .policy(PolicyKind::HardwarePredictor { threshold: 1_000 })
        .migration_latency(1_000)
        .instructions(instructions)
        .warmup(800_000)
        .seed(11)
        .tuner(tuner)
        .build();

    let (report, trace) = Simulation::new(cfg).run_with_tuner_trace();

    println!("dynamic-N estimator on {}:\n", profile.name);
    println!("{:<7} {:>8} {:>14}", "epoch", "N", "L2 hit rate");
    for e in &trace {
        println!(
            "{:<7} {:>8} {:>13.2}%  {}",
            e.epoch,
            e.threshold,
            e.l2_hit_rate * 100.0,
            if e.adopted { "<- adopted" } else { "" }
        );
    }
    println!(
        "\ntuned threshold: N = {}   throughput: {:.4} insn/cyc",
        report.final_threshold.unwrap_or(0),
        report.throughput
    );

    println!("\nstatic thresholds for comparison:");
    for n in [0u64, 100, 500, 1_000, 5_000, 10_000] {
        let r = Simulation::new(
            SystemConfig::builder()
                .profile(profile.clone())
                .policy(PolicyKind::HardwarePredictor { threshold: n })
                .migration_latency(1_000)
                .instructions(instructions)
                .warmup(800_000)
                .seed(11)
                .build(),
        )
        .run();
        println!("  N={n:<6} -> {:.4} insn/cyc", r.throughput);
    }
}
