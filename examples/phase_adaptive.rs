//! Program phases and the dynamic estimator: run a workload that starts
//! as a web server and turns into a database mid-run, and watch the
//! §III-B tuner re-sample its way to a new threshold.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example phase_adaptive
//! ```

use osoffload::core::TunerConfig;
use osoffload::system::{PolicyKind, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn main() {
    // Phase 1: apache behaviour. Phase 2 (from 1.5 M generated
    // instructions): derby behaviour — far fewer, longer invocations.
    let cfg = SystemConfig::builder()
        .profile(Profile::apache())
        .phase(1_500_000, Profile::derby())
        .policy(PolicyKind::HardwarePredictor { threshold: 1_000 })
        .migration_latency(1_000)
        .instructions(3_000_000)
        .warmup(400_000)
        .seed(29)
        .tuner(TunerConfig::scaled_down(1_000)) // 25K-instruction samples
        .build();

    let (report, trace) = Simulation::new(cfg).run_with_tuner_trace();

    println!("apache -> derby phase change at 1.5 M instructions\n");
    println!("{:<7} {:>8} {:>14}", "epoch", "N", "L2 hit rate");
    for e in &trace {
        println!(
            "{:<7} {:>8} {:>13.2}%  {}",
            e.epoch,
            e.threshold,
            e.l2_hit_rate * 100.0,
            if e.adopted { "<- adopted" } else { "" }
        );
    }
    println!(
        "\nfinal threshold N = {} after {} epochs; throughput {:.4} insn/cyc",
        report.final_threshold.unwrap_or(0),
        report.tuner_events,
        report.throughput
    );
    println!("\nThe estimator keeps spending a few percent of run time on sampling");
    println!("epochs precisely so that shifts like this are caught (§III-B: stable");
    println!("periods double only while the chosen N keeps winning).");
}
