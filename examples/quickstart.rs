//! Quickstart: simulate a web server with and without OS off-loading.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use osoffload::system::{PolicyKind, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn main() {
    // The workload: the paper's Apache model — two server threads on one
    // core, ~45% of instructions in privileged mode.
    let profile = Profile::apache();
    println!("workload: {profile}");

    // Baseline: user and OS share a single core (no off-loading).
    let baseline = Simulation::new(
        SystemConfig::builder()
            .profile(profile.clone())
            .policy(PolicyKind::Baseline)
            .instructions(1_500_000)
            .warmup(1_000_000)
            .seed(1)
            .build(),
    )
    .run();
    println!("\nbaseline:   {baseline}");

    // Off-loading with the paper's hardware run-length predictor (HI):
    // privileged sequences predicted to exceed N = 500 instructions
    // migrate to a dedicated OS core (1,000-cycle one-way migration).
    let offload = Simulation::new(
        SystemConfig::builder()
            .profile(profile)
            .policy(PolicyKind::HardwarePredictor { threshold: 500 })
            .migration_latency(1_000)
            .instructions(1_500_000)
            .warmup(1_000_000)
            .seed(1)
            .build(),
    )
    .run();
    println!("off-loaded: {offload}");

    let speedup = offload.normalized_to(&baseline);
    println!("\nnormalized throughput: {speedup:.3}x");
    if let Some(p) = &offload.predictor {
        println!(
            "predictor: {:.1}% exact, {:.1}% within +/-5% ({:.1}% of errors are underestimates)",
            p.exact * 100.0,
            p.within_5pct * 100.0,
            p.underestimates * 100.0
        );
    }
    println!(
        "OS core busy {:.1}% of the time; {} invocations migrated, {} ran locally",
        offload.os_core_busy_frac * 100.0,
        offload.offloads,
        offload.local_invocations
    );
}
