//! Capacity planning for OS cores: how many user cores can share one
//! OS core before queueing erases the benefit? A runnable version of the
//! paper's §V-C study, sweeping both the core ratio and the off-loading
//! threshold.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use osoffload::system::{PolicyKind, SimReport, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn run(policy: PolicyKind, user_cores: usize) -> SimReport {
    Simulation::new(
        SystemConfig::builder()
            .profile(Profile::specjbb())
            .policy(policy)
            .migration_latency(1_000)
            .user_cores(user_cores)
            .instructions(1_200_000)
            .warmup(800_000)
            .seed(23)
            .build(),
    )
    .run()
}

fn main() {
    println!("SPECjbb2005, 1,000-cycle off-loading overhead, one shared OS core\n");
    println!(
        "{:<8} {:<8} {:>14} {:>14} {:>12} {:>14}",
        "ratio", "N", "queue (mean)", "queue (p95)", "OS busy", "vs baseline"
    );
    for user_cores in [1usize, 2, 4] {
        let baseline = run(PolicyKind::Baseline, user_cores);
        for n in [100u64, 1_000] {
            let r = run(PolicyKind::HardwarePredictor { threshold: n }, user_cores);
            println!(
                "{:<8} {:<8} {:>11.0} cy {:>11} cy {:>11.1}% {:>+13.1}%",
                format!("{user_cores}:1"),
                n,
                r.queue.mean_delay,
                r.queue.p95_delay,
                r.os_core_busy_frac * 100.0,
                (r.normalized_to(&baseline) - 1.0) * 100.0
            );
        }
    }
    println!("\nThe paper's conclusion (§V-C): a non-SMT OS core saturates quickly —");
    println!("1:1 (or at most 2:1) is the right provisioning ratio; at 4:1 the queue");
    println!("delay explodes and aggregate throughput drops below no-off-loading.");
}
