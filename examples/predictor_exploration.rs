//! Drive the OS run-length predictor directly — no full-system
//! simulation — to see the AState mechanics of §III-A: learning,
//! confidence, the global fallback, and the CAM vs direct-mapped
//! organisations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example predictor_exploration
//! ```

use osoffload::core::{
    AState, CamPredictor, DirectMappedPredictor, PredictionSource, RunLengthPredictor,
};
use osoffload::cpu::ArchState;
use osoffload::workload::{Profile, Segment, ThreadWorkload};

fn main() {
    // --- 1. The AState hash -------------------------------------------
    let mut arch = ArchState::new();
    arch.set_syscall_registers(0x103 /* writev */, 4, 4096);
    arch.enter_privileged();
    let a_writev_4k = AState::from_arch(&arch);
    arch.exit_privileged();

    arch.set_syscall_registers(0x103, 4, 65536);
    arch.enter_privileged();
    let a_writev_64k = AState::from_arch(&arch);
    arch.exit_privileged();

    println!("AState(writev, 4 KB)  = {a_writev_4k}");
    println!("AState(writev, 64 KB) = {a_writev_64k}");
    println!(
        "distinct arguments hash to distinct AStates: {}\n",
        a_writev_4k != a_writev_64k
    );

    // --- 2. Learning and the confidence counter -----------------------
    let mut cam = CamPredictor::paper_default();
    println!("teaching the CAM that this AState runs 2,278 instructions...");
    for i in 0..3 {
        let p = cam.predict(a_writev_4k);
        println!("  visit {i}: predicted {} ({:?})", p.length, p.source);
        cam.learn(a_writev_4k, p, 2_278);
    }
    let p = cam.predict(a_writev_4k);
    assert_eq!(p.source, PredictionSource::Local);
    println!("  now predicts {} from a confident local entry\n", p.length);

    // --- 3. The global fallback ---------------------------------------
    let cold = AState::from(0xDEAD_BEEFu64);
    let p = cam.predict(cold);
    println!(
        "a never-seen AState falls back to the global last-3 mean: {} ({:?})\n",
        p.length, p.source
    );

    // --- 4. CAM vs direct-mapped on a real invocation stream ----------
    let mut wl = ThreadWorkload::new(Profile::apache(), 0, 99);
    let mut cam = CamPredictor::paper_default();
    let mut dm = DirectMappedPredictor::paper_default();
    let mut arch = ArchState::new();
    let mut seen = 0u64;
    while seen < 30_000 {
        if let Segment::Os(inv) = wl.next_segment() {
            seen += 1;
            arch.set_global(1, inv.regs[0]);
            arch.set_input(0, inv.regs[1]);
            arch.set_input(1, inv.regs[2]);
            arch.enter_privileged();
            let astate = AState::from_arch(&arch);
            for p in [&mut cam as &mut dyn RunLengthPredictor, &mut dm] {
                let pred = p.predict(astate);
                p.learn(astate, pred, inv.actual_len);
            }
            arch.exit_privileged();
        }
    }
    println!("after {seen} Apache invocations:");
    for p in [&cam as &dyn RunLengthPredictor, &dm] {
        let s = p.stats();
        println!(
            "  {:<26} {:>5} B  exact {:>5.1}%  within +/-5% {:>5.1}%",
            p.organization(),
            p.storage_bytes(),
            s.exact.rate() * 100.0,
            s.within_close.rate() * 100.0
        );
    }
    println!("\npaper reference: 73.6% exact + 24.8% close on ~2 KB of state.");
}
