//! Energy-aware off-loading: score the same workload under three designs
//! — no off-loading, off-loading to a homogeneous OS core, and
//! off-loading to a Mogul-style efficiency core — plus the Li & John
//! resource-adaptation alternative, all driven by the paper's predictor.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example energy_aware
//! ```

use osoffload::energy::{evaluate, EnergyParams};
use osoffload::system::{PolicyKind, SimReport, Simulation, SystemConfig};
use osoffload::workload::Profile;

fn simulate(policy: PolicyKind, os_slowdown: u64, adapt: Option<u64>) -> SimReport {
    let mut b = SystemConfig::builder()
        .profile(Profile::apache())
        .policy(policy)
        .migration_latency(1_000)
        .os_core_slowdown_milli(os_slowdown)
        .instructions(1_200_000)
        .warmup(800_000)
        .seed(17);
    if let Some(m) = adapt {
        b = b.resource_adaptation(m);
    }
    Simulation::new(b.build()).run()
}

fn main() {
    let hi = PolicyKind::HardwarePredictor { threshold: 100 };
    let hetero = EnergyParams::heterogeneous();

    let baseline = simulate(PolicyKind::Baseline, 1_000, None);
    let base_energy = evaluate(&baseline, &EnergyParams::homogeneous());

    println!("apache, N = 100, 1,000-cycle migration — performance vs energy\n");
    println!(
        "{:<26} {:>11} {:>13} {:>10}",
        "design", "perf (norm)", "energy (norm)", "EDP (norm)"
    );

    let show = |name: &str, report: &SimReport, params: &EnergyParams| {
        let e = evaluate(report, params);
        println!(
            "{:<26} {:>11.3} {:>13.3} {:>10.3}",
            name,
            report.throughput / baseline.throughput,
            e.energy_normalized_to(&base_energy),
            e.edp_normalized_to(&base_energy)
        );
    };

    show("baseline (1 core)", &baseline, &EnergyParams::homogeneous());

    let homo = simulate(hi, 1_000, None);
    show("offload, homogeneous", &homo, &EnergyParams::homogeneous());

    // The efficiency OS core is slower (simulated) and cheaper (scored).
    let eff = simulate(hi, hetero.os_core.slowdown_milli, None);
    show("offload, efficiency core", &eff, &hetero);

    let adapt = simulate(hi, 1_000, Some(1_250));
    show("adapt locally, 1.25x", &adapt, &EnergyParams::homogeneous());

    println!();
    println!("The paper's future-work direction in one table: the predictor that");
    println!("drives performance off-loading also drives the two energy plays —");
    println!("migrating OS work to an efficiency core (Mogul et al.) or throttling");
    println!("the local core through it (Li & John).");
}
